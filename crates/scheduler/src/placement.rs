//! Job placement: which sub-cluster should run a job?
//!
//! This is the paper's second challenge — "adaptively scheduling a job to
//! either scale-up cluster or scale-out cluster that benefits the job the
//! most" — solved by its Algorithm 1 using the measured cross points.

use mapreduce::JobSpec;

/// The two sides of the hybrid deployment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Run on the scale-up sub-cluster.
    ScaleUp,
    /// Run on the scale-out sub-cluster.
    ScaleOut,
}

/// A snapshot of current cluster load, for load-aware policies: estimated
/// outstanding work (seconds of serial execution) queued on each side.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ClusterLoads {
    /// Outstanding work on the scale-up cluster.
    pub up_outstanding: f64,
    /// Outstanding work on the scale-out cluster.
    pub out_outstanding: f64,
}

/// A placement plus the rationale behind it — which Algorithm-1 band fired,
/// what threshold the input size was compared against, and any policy-specific
/// annotation (a load diversion, an availability discount). Produced by
/// [`JobPlacement::explain`] so observability and reports can show *why* a job
/// landed where it did without re-deriving the policy's internals.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementDecision {
    /// Where the job goes (always identical to what [`JobPlacement::place`]
    /// returns for the same inputs).
    pub placement: Placement,
    /// The rule band that fired, e.g. `"S/I>1"`; policies without bands use
    /// their name.
    pub band: String,
    /// The input-size cross point the decision compared against, in bytes,
    /// when the policy is threshold-based.
    pub threshold: Option<u64>,
    /// Free-form annotation: the rejected alternative, a diversion reason, a
    /// discount factor.
    pub note: Option<String>,
}

/// A placement policy.
pub trait JobPlacement {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Decide where `job` should run given the current `loads`.
    fn place(&self, job: &JobSpec, loads: &ClusterLoads) -> Placement;

    /// Like [`JobPlacement::place`], but returns the decision together with
    /// its rationale. The default implementation reports the policy name as
    /// the band with no threshold; threshold-based policies override it.
    fn explain(&self, job: &JobSpec, loads: &ClusterLoads) -> PlacementDecision {
        PlacementDecision {
            placement: self.place(job, loads),
            band: self.name().to_string(),
            threshold: None,
            note: None,
        }
    }
}

/// The paper's Algorithm 1: cross-point thresholds keyed on the
/// shuffle/input ratio.
///
/// ```text
/// if S/I > 1        : scale-up iff input < 32 GB
/// elif 0.4 ≤ S/I ≤ 1: scale-up iff input < 16 GB
/// else              : scale-up iff input < 10 GB
/// ```
///
/// "If the users do not know the shuffle/input ratio of the jobs anyway, we
/// treat the jobs as map-intensive" — set [`CrossPointScheduler::assume_unknown_ratio`]
/// to emulate that conservative mode.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossPointScheduler {
    /// Threshold for jobs with S/I > 1 (paper: 32 GB, from Wordcount).
    pub high_ratio_threshold: u64,
    /// Threshold for 0.4 ≤ S/I ≤ 1 (paper: 16 GB, from Grep).
    pub mid_ratio_threshold: u64,
    /// Threshold for S/I < 0.4 (paper: 10 GB, from TestDFSIO).
    pub map_intensive_threshold: u64,
    /// Ignore the job's ratio and use the map-intensive rule for everything
    /// (the paper's unknown-ratio fallback).
    pub assume_unknown_ratio: bool,
}

impl Default for CrossPointScheduler {
    fn default() -> Self {
        CrossPointScheduler {
            high_ratio_threshold: 32 << 30,
            mid_ratio_threshold: 16 << 30,
            map_intensive_threshold: 10 << 30,
            assume_unknown_ratio: false,
        }
    }
}

impl CrossPointScheduler {
    /// Stable label for the Algorithm-1 band a ratio falls in.
    pub fn band_for(&self, shuffle_input_ratio: f64) -> &'static str {
        if self.assume_unknown_ratio {
            "unknown-ratio"
        } else if shuffle_input_ratio > 1.0 {
            "S/I>1"
        } else if shuffle_input_ratio >= 0.4 {
            "0.4<=S/I<=1"
        } else {
            "S/I<0.4"
        }
    }

    /// The size threshold applying to a given shuffle/input ratio.
    pub fn threshold_for(&self, shuffle_input_ratio: f64) -> u64 {
        if self.assume_unknown_ratio {
            return self.map_intensive_threshold;
        }
        if shuffle_input_ratio > 1.0 {
            self.high_ratio_threshold
        } else if shuffle_input_ratio >= 0.4 {
            self.mid_ratio_threshold
        } else {
            self.map_intensive_threshold
        }
    }
}

impl JobPlacement for CrossPointScheduler {
    fn name(&self) -> &str {
        "crosspoint"
    }

    fn place(&self, job: &JobSpec, _loads: &ClusterLoads) -> Placement {
        if job.input_size < self.threshold_for(job.profile.shuffle_input_ratio) {
            Placement::ScaleUp
        } else {
            Placement::ScaleOut
        }
    }

    fn explain(&self, job: &JobSpec, loads: &ClusterLoads) -> PlacementDecision {
        let ratio = job.profile.shuffle_input_ratio;
        let threshold = self.threshold_for(ratio);
        let placement = self.place(job, loads);
        let note = match placement {
            Placement::ScaleUp => format!(
                "rejected scale-out: input {} below cross point {}",
                gib(job.input_size),
                gib(threshold)
            ),
            Placement::ScaleOut => format!(
                "rejected scale-up: input {} at/above cross point {}",
                gib(job.input_size),
                gib(threshold)
            ),
        };
        PlacementDecision {
            placement,
            band: self.band_for(ratio).to_string(),
            threshold: Some(threshold),
            note: Some(note),
        }
    }
}

/// Human-readable GiB with two decimals, for decision notes.
fn gib(bytes: u64) -> String {
    format!("{:.2} GiB", bytes as f64 / (1u64 << 30) as f64)
}

/// Degenerate policy: everything on the scale-up cluster.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysUp;

impl JobPlacement for AlwaysUp {
    fn name(&self) -> &str {
        "always-up"
    }
    fn place(&self, _job: &JobSpec, _loads: &ClusterLoads) -> Placement {
        Placement::ScaleUp
    }
}

/// Degenerate policy: everything on the scale-out cluster (what a
/// traditional deployment does).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysOut;

impl JobPlacement for AlwaysOut {
    fn name(&self) -> &str {
        "always-out"
    }
    fn place(&self, _job: &JobSpec, _loads: &ClusterLoads) -> Placement {
        Placement::ScaleOut
    }
}

/// Ablation: a single size threshold with no ratio awareness — what
/// Algorithm 1 degrades to if the shuffle/input factor were ignored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeOnlyScheduler {
    /// Jobs below this input size go to scale-up.
    pub threshold: u64,
}

impl Default for SizeOnlyScheduler {
    fn default() -> Self {
        // Geometric middle of the paper's three thresholds.
        SizeOnlyScheduler {
            threshold: 16 << 30,
        }
    }
}

impl JobPlacement for SizeOnlyScheduler {
    fn name(&self) -> &str {
        "size-only"
    }
    fn place(&self, job: &JobSpec, _loads: &ClusterLoads) -> Placement {
        if job.input_size < self.threshold {
            Placement::ScaleUp
        } else {
            Placement::ScaleOut
        }
    }

    fn explain(&self, job: &JobSpec, loads: &ClusterLoads) -> PlacementDecision {
        PlacementDecision {
            placement: self.place(job, loads),
            band: "size-only".to_string(),
            threshold: Some(self.threshold),
            note: None,
        }
    }
}

/// The paper's stated future work: "the load balancing between the scale-up
/// machines and scale-out machines. For example, if many small jobs arrive
/// at the same time without any large jobs, all the jobs will be scheduled
/// to the scale-up machines, resulting in imbalance".
///
/// This extension diverts a would-be scale-up job to the scale-out cluster
/// when the scale-up backlog exceeds both an absolute floor and a multiple
/// of the scale-out backlog.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadAwareScheduler {
    /// The cross-point policy supplying the first-choice placement.
    pub inner: CrossPointScheduler,
    /// Don't divert while the scale-up backlog is below this (seconds).
    pub min_backlog: f64,
    /// Divert when up backlog > this multiple of the out backlog.
    pub imbalance_factor: f64,
}

impl Default for LoadAwareScheduler {
    fn default() -> Self {
        LoadAwareScheduler {
            inner: CrossPointScheduler::default(),
            min_backlog: 30.0,
            imbalance_factor: 3.0,
        }
    }
}

impl JobPlacement for LoadAwareScheduler {
    fn name(&self) -> &str {
        "load-aware"
    }

    fn place(&self, job: &JobSpec, loads: &ClusterLoads) -> Placement {
        match self.inner.place(job, loads) {
            Placement::ScaleOut => Placement::ScaleOut,
            Placement::ScaleUp => {
                let overloaded = loads.up_outstanding > self.min_backlog
                    && loads.up_outstanding
                        > self.imbalance_factor * loads.out_outstanding.max(1.0);
                if overloaded {
                    Placement::ScaleOut
                } else {
                    Placement::ScaleUp
                }
            }
        }
    }

    fn explain(&self, job: &JobSpec, loads: &ClusterLoads) -> PlacementDecision {
        let mut decision = self.inner.explain(job, loads);
        let final_placement = self.place(job, loads);
        if final_placement != decision.placement {
            decision.note = Some(format!(
                "diverted to scale-out: up backlog {:.0}s exceeds {}x out backlog {:.0}s",
                loads.up_outstanding, self.imbalance_factor, loads.out_outstanding
            ));
            decision.placement = final_placement;
        }
        decision
    }
}

/// Availability-aware cross-point placement for unreliable clusters.
///
/// The scale-up side of the paper's hybrid testbed is only two machines:
/// losing one of them takes out half the sub-cluster's slots *and* — unlike
/// OFS-backed storage — every in-flight task on it, so its blast radius per
/// crash is far larger than a scale-out node's (1 of 12). When machine
/// faults are expected, it pays to shrink the band of jobs sent to the
/// scale-up side; this wrapper scales every cross-point threshold by
/// `1 - penalty`, where the penalty grows with the expected number of
/// crashes per job on the scale-up side weighted by its blast radius.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityAwareScheduler {
    /// The fault-free cross-point rules being discounted.
    pub inner: CrossPointScheduler,
    /// Threshold discount in `[0, 1)`: 0 reduces to the inner policy; 0.5
    /// halves every cross point.
    pub penalty: f64,
}

impl AvailabilityAwareScheduler {
    /// Discount the inner thresholds by `penalty` ∈ [0, 1).
    ///
    /// # Panics
    /// Panics on a penalty outside `[0, 1)`.
    pub fn new(inner: CrossPointScheduler, penalty: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&penalty),
            "penalty must be in [0, 1): {penalty}"
        );
        AvailabilityAwareScheduler { inner, penalty }
    }

    /// Derive the penalty from fault expectations: `crash_rate_per_hour` per
    /// scale-up node, a mean job duration, and the fraction of the
    /// sub-cluster one machine represents (blast radius, e.g. 1/2 for the
    /// paper's two scale-up machines). Saturates below 1.
    pub fn from_rates(
        inner: CrossPointScheduler,
        crash_rate_per_hour: f64,
        mean_job_secs: f64,
        blast_radius: f64,
    ) -> Self {
        let crashes_per_job = crash_rate_per_hour.max(0.0) * mean_job_secs.max(0.0) / 3600.0;
        let penalty = (crashes_per_job * blast_radius.clamp(0.0, 1.0)).min(0.95);
        Self::new(inner, penalty)
    }

    /// The discounted threshold applying to a ratio.
    ///
    /// Rounded to the nearest byte rather than truncated, so a zero penalty
    /// passes the inner thresholds through exactly.
    pub fn threshold_for(&self, shuffle_input_ratio: f64) -> u64 {
        (self.inner.threshold_for(shuffle_input_ratio) as f64 * (1.0 - self.penalty)).round() as u64
    }
}

impl JobPlacement for AvailabilityAwareScheduler {
    fn name(&self) -> &str {
        "availability-aware"
    }

    fn place(&self, job: &JobSpec, _loads: &ClusterLoads) -> Placement {
        if job.input_size < self.threshold_for(job.profile.shuffle_input_ratio) {
            Placement::ScaleUp
        } else {
            Placement::ScaleOut
        }
    }

    fn explain(&self, job: &JobSpec, loads: &ClusterLoads) -> PlacementDecision {
        let ratio = job.profile.shuffle_input_ratio;
        let threshold = self.threshold_for(ratio);
        let note = if self.penalty > 0.0 {
            format!(
                "availability penalty {:.2} discounts cross point {} to {}",
                self.penalty,
                gib(self.inner.threshold_for(ratio)),
                gib(threshold)
            )
        } else {
            "zero penalty: inner cross points apply unchanged".to_string()
        };
        PlacementDecision {
            placement: self.place(job, loads),
            band: self.inner.band_for(ratio).to_string(),
            threshold: Some(threshold),
            note: Some(note),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::{JobProfile, JobSpec};

    const GB: u64 = 1 << 30;

    fn job(ratio: f64, size: u64) -> JobSpec {
        JobSpec::at_zero(0, JobProfile::basic("t", ratio, 0.1), size)
    }

    fn place(s: &impl JobPlacement, ratio: f64, size: u64) -> Placement {
        s.place(&job(ratio, size), &ClusterLoads::default())
    }

    #[test]
    fn algorithm_1_branches_match_paper() {
        let s = CrossPointScheduler::default();
        // S/I > 1 → 32 GB threshold.
        assert_eq!(place(&s, 1.6, 31 * GB), Placement::ScaleUp);
        assert_eq!(place(&s, 1.6, 32 * GB), Placement::ScaleOut);
        // 0.4 ≤ S/I ≤ 1 → 16 GB threshold.
        assert_eq!(place(&s, 0.4, 15 * GB), Placement::ScaleUp);
        assert_eq!(place(&s, 1.0, 16 * GB), Placement::ScaleOut);
        // S/I < 0.4 → 10 GB threshold.
        assert_eq!(place(&s, 0.0, 9 * GB), Placement::ScaleUp);
        assert_eq!(place(&s, 0.39, 10 * GB), Placement::ScaleOut);
    }

    #[test]
    fn boundary_ratios_are_inclusive_like_the_paper() {
        let s = CrossPointScheduler::default();
        // Ratio exactly 1.0 belongs to the middle band ("0.4 ≤ ratio ≤ 1").
        assert_eq!(s.threshold_for(1.0), 16 * GB);
        assert_eq!(s.threshold_for(1.0 + 1e-9), 32 * GB);
        assert_eq!(s.threshold_for(0.4), 16 * GB);
        assert_eq!(s.threshold_for(0.4 - 1e-9), 10 * GB);
    }

    #[test]
    fn unknown_ratio_falls_back_to_map_intensive() {
        let s = CrossPointScheduler {
            assume_unknown_ratio: true,
            ..Default::default()
        };
        // Even a shuffle-heavy 20 GB job is kept off the scale-up cluster:
        // "we need to avoid scheduling any large jobs to the scale-up
        // machines".
        assert_eq!(place(&s, 1.6, 20 * GB), Placement::ScaleOut);
        assert_eq!(place(&s, 1.6, 9 * GB), Placement::ScaleUp);
    }

    #[test]
    fn degenerate_policies() {
        assert_eq!(place(&AlwaysUp, 0.0, 1000 * GB), Placement::ScaleUp);
        assert_eq!(place(&AlwaysOut, 1.6, 1), Placement::ScaleOut);
    }

    #[test]
    fn size_only_ignores_ratio() {
        let s = SizeOnlyScheduler::default();
        assert_eq!(place(&s, 1.6, 15 * GB), place(&s, 0.0, 15 * GB));
        assert_eq!(place(&s, 1.6, 17 * GB), Placement::ScaleOut);
    }

    #[test]
    fn load_aware_diverts_under_backlog() {
        let s = LoadAwareScheduler::default();
        let j = job(1.6, GB); // small, shuffle-heavy → nominally scale-up
        let idle = ClusterLoads {
            up_outstanding: 0.0,
            out_outstanding: 0.0,
        };
        assert_eq!(s.place(&j, &idle), Placement::ScaleUp);
        let swamped = ClusterLoads {
            up_outstanding: 500.0,
            out_outstanding: 10.0,
        };
        assert_eq!(s.place(&j, &swamped), Placement::ScaleOut);
        // Both busy in proportion → no diversion.
        let balanced = ClusterLoads {
            up_outstanding: 500.0,
            out_outstanding: 400.0,
        };
        assert_eq!(s.place(&j, &balanced), Placement::ScaleUp);
        // Never diverts what was already scale-out.
        let big = job(1.6, 100 * GB);
        assert_eq!(s.place(&big, &swamped), Placement::ScaleOut);
    }

    #[test]
    fn zero_penalty_reduces_to_the_inner_policy() {
        let base = CrossPointScheduler::default();
        let s = AvailabilityAwareScheduler::new(base.clone(), 0.0);
        for ratio in [0.0, 0.39, 0.4, 1.0, 1.6] {
            // Exact passthrough, not merely same-placement: the discount
            // rounds to the nearest byte instead of truncating.
            assert_eq!(s.threshold_for(ratio), base.threshold_for(ratio));
            for size_gb in [1u64, 9, 10, 15, 16, 31, 32, 64] {
                let j = job(ratio, size_gb * GB);
                assert_eq!(
                    s.place(&j, &ClusterLoads::default()),
                    base.place(&j, &ClusterLoads::default()),
                    "ratio {ratio} size {size_gb}"
                );
            }
        }
    }

    #[test]
    fn penalty_shrinks_the_scale_up_band() {
        let s = AvailabilityAwareScheduler::new(CrossPointScheduler::default(), 0.5);
        // 20 GB shuffle-heavy: scale-up under the fault-free 32 GB rule, but
        // above the discounted 16 GB cross point.
        assert_eq!(place(&s.inner, 1.6, 20 * GB), Placement::ScaleUp);
        assert_eq!(place(&s, 1.6, 20 * GB), Placement::ScaleOut);
        // Small jobs still benefit from scale-up.
        assert_eq!(place(&s, 1.6, 8 * GB), Placement::ScaleUp);
    }

    #[test]
    fn rate_derived_penalty_scales_with_blast_radius() {
        let inner = CrossPointScheduler::default();
        let calm = AvailabilityAwareScheduler::from_rates(inner.clone(), 0.0, 600.0, 0.5);
        assert_eq!(calm.penalty, 0.0);
        let stormy = AvailabilityAwareScheduler::from_rates(inner.clone(), 2.0, 1800.0, 0.5);
        assert!(stormy.penalty > calm.penalty);
        let wider_blast = AvailabilityAwareScheduler::from_rates(inner, 2.0, 1800.0, 1.0);
        assert!(wider_blast.penalty > stormy.penalty);
        assert!(wider_blast.penalty < 1.0, "penalty saturates below 1");
    }

    #[test]
    fn explain_agrees_with_place_and_names_the_band() {
        let s = CrossPointScheduler::default();
        let loads = ClusterLoads::default();
        for (ratio, size, band) in [
            (1.6, 20 * GB, "S/I>1"),
            (0.5, 20 * GB, "0.4<=S/I<=1"),
            (0.1, 5 * GB, "S/I<0.4"),
        ] {
            let j = job(ratio, size);
            let d = s.explain(&j, &loads);
            assert_eq!(d.placement, s.place(&j, &loads), "ratio {ratio}");
            assert_eq!(d.band, band);
            assert_eq!(d.threshold, Some(s.threshold_for(ratio)));
            assert!(d.note.is_some());
        }
        let unknown = CrossPointScheduler {
            assume_unknown_ratio: true,
            ..Default::default()
        };
        assert_eq!(unknown.explain(&job(1.6, GB), &loads).band, "unknown-ratio");
    }

    #[test]
    fn explain_default_impl_covers_degenerate_policies() {
        let d = AlwaysUp.explain(&job(0.0, GB), &ClusterLoads::default());
        assert_eq!(d.placement, Placement::ScaleUp);
        assert_eq!(d.band, "always-up");
        assert_eq!(d.threshold, None);
        // Object safety: explain must be callable through a trait object.
        let boxed: Box<dyn JobPlacement> = Box::new(AlwaysOut);
        assert_eq!(
            boxed
                .explain(&job(0.0, GB), &ClusterLoads::default())
                .placement,
            Placement::ScaleOut
        );
    }

    #[test]
    fn explain_records_load_diversion_and_availability_discount() {
        let s = LoadAwareScheduler::default();
        let j = job(1.6, GB);
        let swamped = ClusterLoads {
            up_outstanding: 500.0,
            out_outstanding: 10.0,
        };
        let d = s.explain(&j, &swamped);
        assert_eq!(d.placement, Placement::ScaleOut);
        assert!(d
            .note
            .as_deref()
            .unwrap()
            .starts_with("diverted to scale-out"));
        let idle = ClusterLoads::default();
        let calm = s.explain(&j, &idle);
        assert_eq!(calm.placement, Placement::ScaleUp);
        assert!(!calm.note.as_deref().unwrap_or("").starts_with("diverted"));

        let a = AvailabilityAwareScheduler::new(CrossPointScheduler::default(), 0.5);
        let d = a.explain(&job(1.6, 20 * GB), &idle);
        assert_eq!(d.placement, Placement::ScaleOut);
        assert_eq!(d.threshold, Some(16 * GB));
        assert!(d.note.as_deref().unwrap().contains("penalty 0.50"));
    }

    #[test]
    fn custom_thresholds_are_respected() {
        let s = CrossPointScheduler {
            high_ratio_threshold: 64 * GB,
            mid_ratio_threshold: 8 * GB,
            map_intensive_threshold: 2 * GB,
            assume_unknown_ratio: false,
        };
        assert_eq!(place(&s, 2.0, 63 * GB), Placement::ScaleUp);
        assert_eq!(place(&s, 0.5, 9 * GB), Placement::ScaleOut);
        assert_eq!(place(&s, 0.1, 3 * GB), Placement::ScaleOut);
    }
}
