//! Fine-grained ratio bands — the paper's own improvement path:
//!
//! > "A fine-grained ratio partition can be conducted from more experiments
//! > with other different jobs to make the algorithm more accurate."
//!
//! [`BandScheduler`] generalizes Algorithm 1 from three fixed bands to any
//! monotone partition of the shuffle/input-ratio axis, each with its own
//! cross-point threshold, and [`calibrate_bands`] derives such a partition
//! from per-band measurement sweeps.

use crate::calibrate::{estimate_cross_point, SweepPoint};
use crate::placement::{ClusterLoads, CrossPointScheduler, JobPlacement, Placement};
use mapreduce::JobSpec;

/// One band of the ratio axis: applies to jobs with
/// `shuffle/input ratio ≤ max_ratio` not claimed by an earlier band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioBand {
    /// Upper edge of the band (inclusive); the last band should use
    /// `f64::INFINITY` to catch everything.
    pub max_ratio: f64,
    /// Input-size cross point for this band, bytes: smaller inputs go to
    /// the scale-up cluster.
    pub threshold: u64,
}

/// A generalized Algorithm 1 over an arbitrary ratio partition.
#[derive(Debug, Clone, PartialEq)]
pub struct BandScheduler {
    bands: Vec<RatioBand>,
}

impl BandScheduler {
    /// Build from bands sorted by `max_ratio`.
    ///
    /// # Panics
    /// Panics when `bands` is empty, unsorted, or does not end with an
    /// unbounded band (`max_ratio = ∞`) — every job must land somewhere.
    pub fn new(bands: Vec<RatioBand>) -> Self {
        assert!(!bands.is_empty(), "need at least one band");
        assert!(
            bands.windows(2).all(|w| w[0].max_ratio < w[1].max_ratio),
            "bands must be strictly sorted by max_ratio"
        );
        assert!(
            bands.last().unwrap().max_ratio.is_infinite(),
            "last band must be unbounded"
        );
        BandScheduler { bands }
    }

    /// The bands, in ratio order.
    pub fn bands(&self) -> &[RatioBand] {
        &self.bands
    }

    /// The threshold applying to a ratio.
    pub fn threshold_for(&self, ratio: f64) -> u64 {
        self.bands
            .iter()
            .find(|b| ratio <= b.max_ratio)
            .expect("last band is unbounded")
            .threshold
    }

    /// The paper's three-band Algorithm 1 expressed as bands.
    pub fn from_algorithm_1(s: &CrossPointScheduler) -> Self {
        BandScheduler::new(vec![
            // S/I < 0.4 (the map-intensive rule; the paper's band edge is
            // exclusive at 0.4, modelled as an inclusive edge just below).
            RatioBand {
                max_ratio: 0.4 - f64::EPSILON,
                threshold: s.map_intensive_threshold,
            },
            RatioBand {
                max_ratio: 1.0,
                threshold: s.mid_ratio_threshold,
            },
            RatioBand {
                max_ratio: f64::INFINITY,
                threshold: s.high_ratio_threshold,
            },
        ])
    }
}

impl JobPlacement for BandScheduler {
    fn name(&self) -> &str {
        "ratio-bands"
    }

    fn place(&self, job: &JobSpec, _loads: &ClusterLoads) -> Placement {
        if job.input_size < self.threshold_for(job.profile.shuffle_input_ratio) {
            Placement::ScaleUp
        } else {
            Placement::ScaleOut
        }
    }
}

/// Calibrate a band scheduler from `(band edge, sweep)` measurements, one
/// sweep per band, using the paper's cross-point methodology per band.
/// Bands whose sweep shows no crossover fall back to `fallback(edge)`.
pub fn calibrate_bands(
    sweeps: &[(f64, Vec<SweepPoint>)],
    fallback: impl Fn(f64) -> u64,
) -> BandScheduler {
    assert!(!sweeps.is_empty(), "need at least one band sweep");
    let mut bands: Vec<RatioBand> = sweeps
        .iter()
        .map(|(edge, pts)| RatioBand {
            max_ratio: *edge,
            threshold: estimate_cross_point(pts)
                .map(|x| x as u64)
                .unwrap_or_else(|| fallback(*edge)),
        })
        .collect();
    bands.sort_by(|a, b| a.max_ratio.total_cmp(&b.max_ratio));
    if !bands.last().unwrap().max_ratio.is_infinite() {
        let last = *bands.last().unwrap();
        bands.push(RatioBand {
            max_ratio: f64::INFINITY,
            threshold: last.threshold,
        });
    }
    BandScheduler::new(bands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::JobProfile;

    const GB: u64 = 1 << 30;

    fn job(ratio: f64, size: u64) -> JobSpec {
        JobSpec::at_zero(0, JobProfile::basic("t", ratio, 0.1), size)
    }

    #[test]
    fn equivalent_to_algorithm_1() {
        let alg1 = CrossPointScheduler::default();
        let bands = BandScheduler::from_algorithm_1(&alg1);
        let loads = ClusterLoads::default();
        for ratio in [0.0, 0.2, 0.39, 0.4, 0.7, 1.0, 1.2, 1.6, 2.5] {
            for size_gb in [1u64, 9, 10, 15, 16, 31, 32, 64] {
                let j = job(ratio, size_gb * GB);
                assert_eq!(
                    alg1.place(&j, &loads),
                    bands.place(&j, &loads),
                    "ratio {ratio} size {size_gb} GB"
                );
            }
        }
    }

    #[test]
    fn fine_partition_interpolates() {
        let bands = BandScheduler::new(vec![
            RatioBand {
                max_ratio: 0.2,
                threshold: 8 * GB,
            },
            RatioBand {
                max_ratio: 0.6,
                threshold: 14 * GB,
            },
            RatioBand {
                max_ratio: 1.2,
                threshold: 22 * GB,
            },
            RatioBand {
                max_ratio: f64::INFINITY,
                threshold: 34 * GB,
            },
        ]);
        assert_eq!(bands.threshold_for(0.1), 8 * GB);
        assert_eq!(bands.threshold_for(0.2), 8 * GB);
        assert_eq!(bands.threshold_for(0.5), 14 * GB);
        assert_eq!(bands.threshold_for(0.9), 22 * GB);
        assert_eq!(bands.threshold_for(5.0), 34 * GB);
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn rejects_bounded_last_band() {
        BandScheduler::new(vec![RatioBand {
            max_ratio: 1.0,
            threshold: GB,
        }]);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn rejects_unsorted_bands() {
        BandScheduler::new(vec![
            RatioBand {
                max_ratio: 1.0,
                threshold: GB,
            },
            RatioBand {
                max_ratio: 0.5,
                threshold: GB,
            },
            RatioBand {
                max_ratio: f64::INFINITY,
                threshold: GB,
            },
        ]);
    }

    #[test]
    fn calibration_uses_crossings_and_fallback() {
        let crossing = vec![
            SweepPoint {
                input_size: 1e9,
                t_up: 10.0,
                t_out: 15.0,
            },
            SweepPoint {
                input_size: 64e9,
                t_up: 100.0,
                t_out: 60.0,
            },
        ];
        let no_crossing = vec![SweepPoint {
            input_size: 1e9,
            t_up: 20.0,
            t_out: 10.0,
        }];
        let s = calibrate_bands(&[(0.4, no_crossing), (f64::INFINITY, crossing)], |_| {
            12 * GB
        });
        assert_eq!(s.bands().len(), 2);
        assert_eq!(s.threshold_for(0.1), 12 * GB, "fallback band");
        assert!(s.threshold_for(2.0) > GB, "calibrated band");
    }

    #[test]
    fn calibration_appends_unbounded_band_if_missing() {
        let pts = vec![
            SweepPoint {
                input_size: 1e9,
                t_up: 10.0,
                t_out: 15.0,
            },
            SweepPoint {
                input_size: 64e9,
                t_up: 100.0,
                t_out: 60.0,
            },
        ];
        let s = calibrate_bands(&[(0.5, pts)], |_| GB);
        assert!(s.bands().last().unwrap().max_ratio.is_infinite());
        assert_eq!(s.threshold_for(0.2), s.threshold_for(99.0));
    }
}
