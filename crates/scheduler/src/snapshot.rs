//! Snapshot/restore for the adaptive scheduler — service mode.
//!
//! A deployed [`AdaptiveScheduler`] is a long-lived process: it accumulates
//! per-band observation windows, walks its thresholds, and advances an
//! exploration RNG stream. Restarting it from the static defaults would
//! discard all of that and, worse, silently change the decision stream.
//! This module serializes the *complete* mutable state to a hand-rolled
//! JSON document (schema [`SCHEMA`], same std-only conventions as
//! `bench::profile`) and rebuilds a scheduler from it.
//!
//! The contract is **bitwise restart equivalence**: for any scheduler `s`,
//! `restore(&save(&s))` yields a scheduler whose every subsequent decision,
//! observation, and recalibration is bit-for-bit identical to what `s`
//! itself would have produced. Three properties make this hold:
//!
//! * integers (thresholds, sizes, RNG words) are written as exact decimal
//!   `u64`s and parsed without a float round-trip;
//! * floats (execution times, config rates, audit estimates) are written in
//!   Rust's shortest-roundtrip `{:?}` form, which restores finite `f64`s
//!   bit-for-bit — and every float that reaches a snapshot is finite by the
//!   scheduler's own input hardening;
//! * the RNG's raw 256-bit position is checkpointed, so exploration draws
//!   resume mid-stream instead of replaying from the seed.
//!
//! Derived counts (`up_n`/`out_n`) are deliberately *not* serialized; they
//! are recomputed from the windows on restore, so a hand-edited snapshot
//! cannot desynchronize them.

use crate::online::{AdaptiveConfig, AdaptiveScheduler, Observation, Recalibration, BAND_LABELS};
use crate::placement::CrossPointScheduler;
use simcore::rng::DetRng;
use std::collections::VecDeque;

/// Snapshot schema identifier; bumped when the shape changes.
pub const SCHEMA: &str = "hybrid-hadoop-sched/v1";

/// Serialize the full mutable state of `sched` to the [`SCHEMA`] JSON form.
///
/// The rendering is deterministic: the same scheduler state always produces
/// the same bytes, so `save(&restore(&doc)?)` reproduces `doc` exactly for
/// any document `save` emitted.
pub fn save(sched: &AdaptiveScheduler) -> String {
    let cfg = &sched.cfg;
    let rng = sched.rng.state();
    let mut out = String::from("{\n");
    out.push_str(&format!("\"schema\": {},\n", json_string(SCHEMA)));
    out.push_str(&format!(
        "\"config\": {{\"window\": {}, \"min_side_obs\": {}, \"min_bucket_obs\": {}, \
         \"buckets_per_octave\": {}, \"recalibrate_every\": {}, \"max_step\": {:?}, \
         \"exploration\": {:?}, \"seed\": {}, \"min_threshold\": {}, \"max_threshold\": {}}},\n",
        cfg.window,
        cfg.min_side_obs,
        cfg.min_bucket_obs,
        cfg.buckets_per_octave,
        cfg.recalibrate_every,
        cfg.max_step,
        cfg.exploration,
        cfg.seed,
        cfg.min_threshold,
        cfg.max_threshold,
    ));
    out.push_str(&format!(
        "\"thresholds\": {{\"high_ratio\": {}, \"mid_ratio\": {}, \"map_intensive\": {}}},\n",
        sched.base.high_ratio_threshold,
        sched.base.mid_ratio_threshold,
        sched.base.map_intensive_threshold,
    ));
    out.push_str(&format!(
        "\"rng\": [{}, {}, {}, {}],\n",
        rng[0], rng[1], rng[2], rng[3]
    ));
    out.push_str("\"bands\": [\n");
    for (i, b) in sched.bands.iter().enumerate() {
        out.push_str(&format!(
            "{{\"since_recal\": {}, \"window\": [",
            b.since_recal
        ));
        for (j, o) in b.window.iter().enumerate() {
            out.push_str(&format!(
                "[{}, {:?}, {}]{}",
                o.input_size,
                o.exec_secs,
                o.ran_up,
                if j + 1 < b.window.len() { ", " } else { "" },
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < sched.bands.len() { "," } else { "" }
        ));
    }
    out.push_str("],\n");
    out.push_str("\"recalibrations\": [\n");
    for (i, r) in sched.recalibrations.iter().enumerate() {
        out.push_str(&format!(
            "{{\"band\": {}, \"old_bytes\": {}, \"new_bytes\": {}, \"estimate_bytes\": {:?}, \
             \"stepped\": {}, \"clamped\": {}, \"window_up\": {}, \"window_out\": {}, \
             \"completions\": {}}}{}\n",
            json_string(r.band),
            r.old_bytes,
            r.new_bytes,
            r.estimate_bytes,
            r.stepped,
            r.clamped,
            r.window_up,
            r.window_out,
            r.completions,
            if i + 1 < sched.recalibrations.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("],\n");
    out.push_str(&format!("\"completions\": {}\n", sched.completions));
    out.push_str("}\n");
    out
}

/// Rebuild a scheduler from a document written by [`save`].
///
/// # Errors
/// Returns a description of the first malformed construct: schema mismatch,
/// missing field, wrong band count, an all-zero RNG state, an unknown band
/// label, or a window entry violating the scheduler's own input invariants
/// (zero size, non-finite or non-positive execution time).
pub fn restore(json: &str) -> Result<AdaptiveScheduler, String> {
    let mut p = Cursor {
        b: json.as_bytes(),
        i: 0,
    };
    p.ws();
    p.expect(b'{')?;
    let mut schema = None;
    let mut config = None;
    let mut thresholds = None;
    let mut rng = None;
    let mut bands = None;
    let mut recalibrations = None;
    let mut completions = None;
    loop {
        p.ws();
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match key.as_str() {
            "schema" => schema = Some(p.string()?),
            "config" => config = Some(parse_config(&mut p)?),
            "thresholds" => thresholds = Some(parse_thresholds(&mut p)?),
            "rng" => rng = Some(parse_rng(&mut p)?),
            "bands" => bands = Some(parse_bands(&mut p)?),
            "recalibrations" => recalibrations = Some(parse_recalibrations(&mut p)?),
            "completions" => completions = Some(p.u64()?),
            other => return Err(format!("unknown snapshot field {other:?}")),
        }
        p.ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            other => return Err(format!("expected ',' or '}}' in snapshot, got {other:?}")),
        }
    }
    match schema.as_deref() {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unsupported schema {other:?}, want {SCHEMA:?}")),
        None => return Err("missing snapshot field \"schema\"".into()),
    }
    let cfg: AdaptiveConfig = config.ok_or("missing snapshot field \"config\"")?;
    let (high, mid, map) = thresholds.ok_or("missing snapshot field \"thresholds\"")?;
    let rng = rng.ok_or("missing snapshot field \"rng\"")?;
    if rng.iter().all(|&w| w == 0) {
        return Err("all-zero rng state".into());
    }
    let raw_bands = bands.ok_or("missing snapshot field \"bands\"")?;
    if raw_bands.len() != BAND_LABELS.len() {
        return Err(format!(
            "expected {} bands, got {}",
            BAND_LABELS.len(),
            raw_bands.len()
        ));
    }
    let mut bands: [crate::online::BandState; 3] = Default::default();
    for (st, (since_recal, window)) in bands.iter_mut().zip(raw_bands) {
        for o in &window {
            if o.input_size == 0 || !(o.exec_secs.is_finite() && o.exec_secs > 0.0) {
                return Err(format!(
                    "invalid window observation: size {} exec {:?}",
                    o.input_size, o.exec_secs
                ));
            }
        }
        st.up_n = window.iter().filter(|o| o.ran_up).count();
        st.out_n = window.len() - st.up_n;
        st.window = VecDeque::from(window);
        st.since_recal = since_recal;
    }
    Ok(AdaptiveScheduler {
        base: CrossPointScheduler {
            high_ratio_threshold: high,
            mid_ratio_threshold: mid,
            map_intensive_threshold: map,
            assume_unknown_ratio: false,
        },
        cfg,
        rng: DetRng::from_state(rng),
        bands,
        recalibrations: recalibrations.ok_or("missing snapshot field \"recalibrations\"")?,
        completions: completions.ok_or("missing snapshot field \"completions\"")?,
    })
}

fn parse_config(p: &mut Cursor<'_>) -> Result<AdaptiveConfig, String> {
    let mut window = None;
    let mut min_side_obs = None;
    let mut min_bucket_obs = None;
    let mut buckets_per_octave = None;
    let mut recalibrate_every = None;
    let mut max_step = None;
    let mut exploration = None;
    let mut seed = None;
    let mut min_threshold = None;
    let mut max_threshold = None;
    p.object(|p, key| {
        match key {
            "window" => window = Some(p.usize()?),
            "min_side_obs" => min_side_obs = Some(p.usize()?),
            "min_bucket_obs" => min_bucket_obs = Some(p.usize()?),
            "buckets_per_octave" => {
                buckets_per_octave =
                    Some(u32::try_from(p.u64()?).map_err(|_| "buckets_per_octave overflows u32")?)
            }
            "recalibrate_every" => recalibrate_every = Some(p.usize()?),
            "max_step" => max_step = Some(p.f64()?),
            "exploration" => exploration = Some(p.f64()?),
            "seed" => seed = Some(p.u64()?),
            "min_threshold" => min_threshold = Some(p.u64()?),
            "max_threshold" => max_threshold = Some(p.u64()?),
            other => return Err(format!("unknown config field {other:?}")),
        }
        Ok(())
    })?;
    let miss = |f: &str| format!("missing config field {f:?}");
    Ok(AdaptiveConfig {
        window: window.ok_or_else(|| miss("window"))?,
        min_side_obs: min_side_obs.ok_or_else(|| miss("min_side_obs"))?,
        min_bucket_obs: min_bucket_obs.ok_or_else(|| miss("min_bucket_obs"))?,
        buckets_per_octave: buckets_per_octave.ok_or_else(|| miss("buckets_per_octave"))?,
        recalibrate_every: recalibrate_every.ok_or_else(|| miss("recalibrate_every"))?,
        max_step: max_step.ok_or_else(|| miss("max_step"))?,
        exploration: exploration.ok_or_else(|| miss("exploration"))?,
        seed: seed.ok_or_else(|| miss("seed"))?,
        min_threshold: min_threshold.ok_or_else(|| miss("min_threshold"))?,
        max_threshold: max_threshold.ok_or_else(|| miss("max_threshold"))?,
    })
}

fn parse_thresholds(p: &mut Cursor<'_>) -> Result<(u64, u64, u64), String> {
    let mut high = None;
    let mut mid = None;
    let mut map = None;
    p.object(|p, key| {
        match key {
            "high_ratio" => high = Some(p.u64()?),
            "mid_ratio" => mid = Some(p.u64()?),
            "map_intensive" => map = Some(p.u64()?),
            other => return Err(format!("unknown thresholds field {other:?}")),
        }
        Ok(())
    })?;
    let miss = |f: &str| format!("missing thresholds field {f:?}");
    Ok((
        high.ok_or_else(|| miss("high_ratio"))?,
        mid.ok_or_else(|| miss("mid_ratio"))?,
        map.ok_or_else(|| miss("map_intensive"))?,
    ))
}

fn parse_rng(p: &mut Cursor<'_>) -> Result<[u64; 4], String> {
    let mut words = Vec::with_capacity(4);
    p.array(|p| {
        words.push(p.u64()?);
        Ok(())
    })?;
    <[u64; 4]>::try_from(words).map_err(|v| format!("expected 4 rng words, got {}", v.len()))
}

#[allow(clippy::type_complexity)]
fn parse_bands(p: &mut Cursor<'_>) -> Result<Vec<(usize, Vec<Observation>)>, String> {
    let mut bands = Vec::new();
    p.array(|p| {
        let mut since_recal = None;
        let mut window = None;
        p.object(|p, key| {
            match key {
                "since_recal" => since_recal = Some(p.usize()?),
                "window" => window = Some(parse_window(p)?),
                other => return Err(format!("unknown band field {other:?}")),
            }
            Ok(())
        })?;
        bands.push((
            since_recal.ok_or("missing band field \"since_recal\"")?,
            window.ok_or("missing band field \"window\"")?,
        ));
        Ok(())
    })?;
    Ok(bands)
}

fn parse_window(p: &mut Cursor<'_>) -> Result<Vec<Observation>, String> {
    let mut window = Vec::new();
    p.array(|p| {
        p.expect(b'[')?;
        p.ws();
        let input_size = p.u64()?;
        p.ws();
        p.expect(b',')?;
        p.ws();
        let exec_secs = p.f64()?;
        p.ws();
        p.expect(b',')?;
        p.ws();
        let ran_up = p.bool()?;
        p.ws();
        p.expect(b']')?;
        window.push(Observation {
            input_size,
            exec_secs,
            ran_up,
        });
        Ok(())
    })?;
    Ok(window)
}

fn parse_recalibrations(p: &mut Cursor<'_>) -> Result<Vec<Recalibration>, String> {
    let mut recs = Vec::new();
    p.array(|p| {
        let mut band = None;
        let mut old_bytes = None;
        let mut new_bytes = None;
        let mut estimate_bytes = None;
        let mut stepped = None;
        let mut clamped = None;
        let mut window_up = None;
        let mut window_out = None;
        let mut completions = None;
        p.object(|p, key| {
            match key {
                "band" => {
                    let label = p.string()?;
                    band = Some(
                        *BAND_LABELS
                            .iter()
                            .find(|&&l| l == label)
                            .ok_or_else(|| format!("unknown band label {label:?}"))?,
                    );
                }
                "old_bytes" => old_bytes = Some(p.u64()?),
                "new_bytes" => new_bytes = Some(p.u64()?),
                "estimate_bytes" => estimate_bytes = Some(p.f64()?),
                "stepped" => stepped = Some(p.bool()?),
                "clamped" => clamped = Some(p.bool()?),
                "window_up" => window_up = Some(p.usize()?),
                "window_out" => window_out = Some(p.usize()?),
                "completions" => completions = Some(p.u64()?),
                other => return Err(format!("unknown recalibration field {other:?}")),
            }
            Ok(())
        })?;
        let miss = |f: &str| format!("missing recalibration field {f:?}");
        recs.push(Recalibration {
            band: band.ok_or_else(|| miss("band"))?,
            old_bytes: old_bytes.ok_or_else(|| miss("old_bytes"))?,
            new_bytes: new_bytes.ok_or_else(|| miss("new_bytes"))?,
            estimate_bytes: estimate_bytes.ok_or_else(|| miss("estimate_bytes"))?,
            stepped: stepped.ok_or_else(|| miss("stepped"))?,
            clamped: clamped.ok_or_else(|| miss("clamped"))?,
            window_up: window_up.ok_or_else(|| miss("window_up"))?,
            window_out: window_out.ok_or_else(|| miss("window_out"))?,
            completions: completions.ok_or_else(|| miss("completions"))?,
        });
        Ok(())
    })?;
    Ok(recs)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A byte cursor with just enough JSON parsing for the snapshot schema —
/// the `bench::profile` parser plus exact `u64`s (RNG words must not take a
/// float round-trip), booleans, and object/array walkers.
struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl Cursor<'_> {
    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    /// Walk `{"key": <value>, ...}`, calling `field` positioned at each value.
    fn object(
        &mut self,
        mut field: impl FnMut(&mut Self, &str) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.next();
            return Ok(());
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            field(self, &key)?;
            self.ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                other => return Err(format!("expected ',' or '}}' in object, got {other:?}")),
            }
        }
    }

    /// Walk `[<value>, ...]`, calling `item` positioned at each value.
    fn array(
        &mut self,
        mut item: impl FnMut(&mut Self) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.next();
            return Ok(());
        }
        loop {
            self.ws();
            item(self)?;
            self.ws();
            match self.next() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                other => return Err(format!("expected ',' or ']' in array, got {other:?}")),
            }
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == start {
            return Err("expected an unsigned integer".into());
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map_err(|e| e.to_string())
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|e| e.to_string())
    }

    fn f64(&mut self) -> Result<f64, String> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        if self.i == start {
            return Err("expected a number".into());
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| e.to_string())
    }

    fn bool(&mut self) -> Result<bool, String> {
        for (lit, val) in [(&b"true"[..], true), (&b"false"[..], false)] {
            if self.b[self.i..].starts_with(lit) {
                self.i += lit.len();
                return Ok(val);
            }
        }
        Err("expected 'true' or 'false'".into())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        if self.i + 4 > self.b.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                            .map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        self.i += 4;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.i - 1;
                    if start + len > self.b.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.b[start..start + len])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.i = start + len;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::{JobProfile, JobSpec};
    use simcore::rng::substream;

    const GB: u64 = 1 << 30;

    fn job(ratio: f64, size: u64) -> JobSpec {
        JobSpec::at_zero(0, JobProfile::basic("t", ratio, 0.1), size)
    }

    /// A scheduler with non-trivial state: moved thresholds, partially
    /// filled windows, consumed RNG draws, and a recalibration on record.
    fn busy_scheduler() -> AdaptiveScheduler {
        let mut a = AdaptiveScheduler::new(AdaptiveConfig {
            window: 64,
            recalibrate_every: 8,
            exploration: 0.25,
            ..Default::default()
        });
        let mut r = substream(42, 7);
        for i in 0..200u64 {
            let ratio = [1.5, 0.7, 0.1][(i % 3) as usize];
            let size = GB + r.next_u64() % (40 * GB);
            let d = a.route(&job(ratio, size));
            let up = d.placement == crate::placement::Placement::ScaleUp;
            let exec = if up {
                10.0 + size as f64 / GB as f64
            } else {
                14.0 + size as f64 / (2 * GB) as f64
            };
            a.observe(size, ratio, up, exec);
        }
        a
    }

    fn states_equal(a: &AdaptiveScheduler, b: &AdaptiveScheduler) -> bool {
        a.base == b.base
            && a.cfg == b.cfg
            && a.rng == b.rng
            && a.completions == b.completions
            && a.recalibrations == b.recalibrations
            && a.bands.iter().zip(b.bands.iter()).all(|(x, y)| {
                x.window == y.window
                    && x.up_n == y.up_n
                    && x.out_n == y.out_n
                    && x.since_recal == y.since_recal
            })
    }

    #[test]
    fn save_restore_roundtrips_state_and_bytes() {
        let a = busy_scheduler();
        assert!(
            !a.recalibrations().is_empty(),
            "fixture must exercise the audit trail"
        );
        let doc = save(&a);
        let b = restore(&doc).unwrap();
        assert!(states_equal(&a, &b));
        // Parse → render reproduces the document byte-for-byte.
        assert_eq!(save(&b), doc);
    }

    #[test]
    fn restored_scheduler_continues_bitwise_identically() {
        let mut a = busy_scheduler();
        let mut b = restore(&save(&a)).unwrap();
        let mut r = substream(9, 9);
        for i in 0..300u64 {
            let ratio = [2.0, 0.5, 0.2][(i % 3) as usize];
            let size = GB + r.next_u64() % (50 * GB);
            let j = job(ratio, size);
            assert_eq!(a.route(&j), b.route(&j), "decision {i}");
            let up = i % 2 == 0;
            let exec = 5.0 + (size % 1000) as f64 * 0.01;
            assert_eq!(
                a.observe(size, ratio, up, exec),
                b.observe(size, ratio, up, exec)
            );
        }
        assert_eq!(a.recalibrations(), b.recalibrations());
    }

    #[test]
    fn fresh_scheduler_roundtrips_too() {
        let a = AdaptiveScheduler::default();
        let b = restore(&save(&a)).unwrap();
        assert!(states_equal(&a, &b));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let doc = save(&AdaptiveScheduler::default()).replace("sched/v1", "sched/v9");
        let err = restore(&doc).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn corrupt_documents_are_rejected() {
        let base = save(&busy_scheduler());
        for (needle, patch, want) in [
            ("\"completions\":", "\"completions2\":", "unknown"),
            ("\"rng\": [", "\"rng\": [1, ", "expected 4 rng words"),
            (
                "\"band\": \"S/I>1\"",
                "\"band\": \"S/I>9\"",
                "unknown band label",
            ),
        ] {
            let doc = base.replacen(needle, patch, 1);
            assert_ne!(doc, base, "patch {patch:?} must apply");
            let err = restore(&doc).unwrap_err();
            assert!(err.contains(want), "{patch:?}: {err}");
        }
        let err = restore("").unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }

    #[test]
    fn zero_rng_state_is_rejected_not_panicking() {
        let mut a = AdaptiveScheduler::default();
        let doc = save(&a);
        let rng = a.rng.state();
        let patched = doc.replace(
            &format!("\"rng\": [{}, {}, {}, {}]", rng[0], rng[1], rng[2], rng[3]),
            "\"rng\": [0, 0, 0, 0]",
        );
        assert_ne!(patched, doc);
        let err = restore(&patched).unwrap_err();
        assert!(err.contains("all-zero rng state"), "{err}");
        let _ = a.route(&job(0.5, GB)); // still usable
    }

    #[test]
    fn invalid_window_observations_are_rejected() {
        let mut a = AdaptiveScheduler::default();
        a.observe(GB, 0.5, true, 12.5);
        let doc = save(&a);
        for patch in ["[0, 12.5, true]", "[1073741824, -1.0, true]"] {
            let bad = doc.replace("[1073741824, 12.5, true]", patch);
            assert_ne!(bad, doc, "patch {patch:?} must apply");
            let err = restore(&bad).unwrap_err();
            assert!(err.contains("invalid window observation"), "{err}");
        }
    }

    #[test]
    fn derived_counts_are_recomputed_from_windows() {
        let mut a = AdaptiveScheduler::default();
        for i in 0..10u64 {
            a.observe(GB + i, 0.5, i % 3 == 0, 10.0);
        }
        let b = restore(&save(&a)).unwrap();
        assert_eq!(b.bands[1].up_n, 4);
        assert_eq!(b.bands[1].out_n, 6);
    }
}
