//! # policy — pluggable multi-tenant queue disciplines
//!
//! The cross-point layer ([`crate::CrossPointScheduler`], Algorithm 1)
//! decides *where* a job runs; a [`SchedulerPolicy`] decides *when* and
//! *for whom*. The two compose: the tenant dispatcher
//! ([`crate::tenant::TenantDispatcher`]) holds a policy, offers it every
//! queued job each time a slot frees, and forwards whatever the policy
//! picks to the replay engine, where the static or adaptive router still
//! makes the side decision.
//!
//! Three disciplines mirror the Hadoop YARN zoo evaluated in the
//! multi-tenant scheduler literature:
//!
//! * [`FifoPolicy`] — one global arrival-order queue (the YARN default and
//!   the head-of-line-blocking baseline);
//! * [`FairPolicy`] — per-tenant subqueues, next pick goes to the tenant
//!   with the lowest weight-normalized usage (instantaneous max-min
//!   fairness over virtual service time);
//! * [`CapacityPolicy`] — hierarchical queues with capacity weights:
//!   pick the most-under-capacity queue first, then the fairest tenant
//!   inside it. Shares are elastic (work-conserving): an over-capacity
//!   queue still runs when every under-capacity queue has nothing
//!   eligible.
//!
//! All three are deterministic: picks depend only on queue contents, the
//! share ledger, and fixed tie-breaks (normalized usage, then tenant id,
//! then arrival sequence) — never on wall clock or map iteration order.

use crate::tenant::{ShareLedger, TenantId, TenantTable};
use std::collections::{BTreeMap, VecDeque};

/// A job waiting inside a policy queue. Times are dispatcher-virtual
/// seconds; `cost` is the virtual service estimate used for share
/// accounting (the replay engine later decides the real duration).
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// Arrival sequence number — the global tie-break of last resort.
    pub seq: u64,
    /// Engine job id (`JobId.0`), carried through for attribution.
    pub job: u32,
    pub tenant: TenantId,
    /// Virtual service cost in seconds (charged to the tenant's share).
    pub cost: f64,
    pub input_size: u64,
    /// Arrival time at the dispatcher, seconds.
    pub enqueued: f64,
    /// Locality preference: `true` = scale-up side. Delay scheduling holds
    /// the job for this side until `eligible_other_at`.
    pub prefers_up: bool,
    /// First instant the job may fall back to its non-preferred side.
    pub eligible_other_at: f64,
    /// Absolute completion deadline (enqueue + SLO), if the tenant has one.
    pub deadline: Option<f64>,
}

/// Free slots per side, as seen by a policy when it picks.
#[derive(Debug, Clone, Copy)]
pub struct SideFree {
    pub up: u32,
    pub out: u32,
}

impl SideFree {
    pub fn any(self) -> bool {
        self.up > 0 || self.out > 0
    }
}

/// Can `job` start *now* on some free side? Its preferred side always
/// qualifies; the other side only after the delay-scheduling bound.
pub fn eligible(job: &PendingJob, now: f64, free: SideFree) -> bool {
    let (pref, other) = if job.prefers_up {
        (free.up, free.out)
    } else {
        (free.out, free.up)
    };
    pref > 0 || (other > 0 && now >= job.eligible_other_at)
}

/// A queue discipline the tenant dispatcher drives.
///
/// Contract: `pick` must only return a job for which [`eligible`] holds,
/// must be deterministic given identical call sequences, and must remove
/// the returned job from its queue. `requeue` re-inserts a preempted job
/// *ahead of* equal-priority work (it keeps its original `seq`).
pub trait SchedulerPolicy {
    /// Short label used in tables and telemetry (`"fifo"`, `"fair"`,
    /// `"capacity"`).
    fn name(&self) -> &'static str;

    /// Accept a newly arrived (or re-admitted) job.
    fn enqueue(&mut self, job: PendingJob);

    /// Re-insert a preempted job; it keeps its original arrival sequence
    /// so disciplines that order by `seq` restore it near the front.
    fn requeue(&mut self, job: PendingJob) {
        self.enqueue(job);
    }

    /// Choose the next job to start, honoring [`eligible`] against `free`.
    fn pick(&mut self, now: f64, free: SideFree, shares: &ShareLedger) -> Option<PendingJob>;

    /// Number of queued jobs.
    fn queued(&self) -> usize;

    /// Earliest strictly-future instant at which a currently queued job
    /// gains fallback eligibility (drives the dispatcher's delay-fallback
    /// wake timers). `None` when nothing is waiting on a bound.
    fn next_wake(&self, now: f64) -> Option<f64>;
}

fn min_future_wake<'a, I: Iterator<Item = &'a PendingJob>>(jobs: I, now: f64) -> Option<f64> {
    jobs.map(|j| j.eligible_other_at)
        .filter(|&t| t > now)
        .fold(None, |acc: Option<f64>, t| {
            Some(acc.map_or(t, |a| a.min(t)))
        })
}

/// Global arrival-order queue. The pick scans from the front for the
/// first eligible job, so a blocked head does not idle a free side
/// (plain FIFO with side-eligibility skip).
#[derive(Debug, Default)]
pub struct FifoPolicy {
    queue: VecDeque<PendingJob>,
}

impl FifoPolicy {
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulerPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn enqueue(&mut self, job: PendingJob) {
        self.queue.push_back(job);
    }

    fn requeue(&mut self, job: PendingJob) {
        // Restore arrival order: insert before the first younger job.
        let at = self
            .queue
            .iter()
            .position(|q| q.seq > job.seq)
            .unwrap_or(self.queue.len());
        self.queue.insert(at, job);
    }

    fn pick(&mut self, now: f64, free: SideFree, _shares: &ShareLedger) -> Option<PendingJob> {
        let at = self.queue.iter().position(|j| eligible(j, now, free))?;
        self.queue.remove(at)
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn next_wake(&self, now: f64) -> Option<f64> {
        min_future_wake(self.queue.iter(), now)
    }
}

/// Per-tenant FIFO subqueues; the next pick goes to the eligible tenant
/// head with the lowest weight-normalized usage (ties: lower tenant id).
/// Only subqueue *heads* compete — within a tenant, arrival order is
/// preserved even when a later job would be side-eligible sooner.
#[derive(Debug, Default)]
pub struct FairPolicy {
    queues: BTreeMap<TenantId, VecDeque<PendingJob>>,
    len: usize,
}

impl FairPolicy {
    pub fn new() -> Self {
        Self::default()
    }
}

fn insert_by_seq(queue: &mut VecDeque<PendingJob>, job: PendingJob) {
    let at = queue
        .iter()
        .position(|q| q.seq > job.seq)
        .unwrap_or(queue.len());
    queue.insert(at, job);
}

impl SchedulerPolicy for FairPolicy {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn enqueue(&mut self, job: PendingJob) {
        self.queues.entry(job.tenant).or_default().push_back(job);
        self.len += 1;
    }

    fn requeue(&mut self, job: PendingJob) {
        let queue = self.queues.entry(job.tenant).or_default();
        insert_by_seq(queue, job);
        self.len += 1;
    }

    fn pick(&mut self, now: f64, free: SideFree, shares: &ShareLedger) -> Option<PendingJob> {
        let winner = self
            .queues
            .iter()
            .filter(|(_, q)| q.front().is_some_and(|j| eligible(j, now, free)))
            .min_by(|(ta, _), (tb, _)| {
                shares
                    .norm_usage(**ta)
                    .total_cmp(&shares.norm_usage(**tb))
                    .then(ta.cmp(tb))
            })
            .map(|(t, _)| *t)?;
        let queue = self.queues.get_mut(&winner).expect("winner has a queue");
        let job = queue.pop_front();
        if queue.is_empty() {
            self.queues.remove(&winner);
        }
        self.len -= 1;
        job
    }

    fn queued(&self) -> usize {
        self.len
    }

    fn next_wake(&self, now: f64) -> Option<f64> {
        min_future_wake(self.queues.values().filter_map(|q| q.front()), now)
    }
}

/// Hierarchical capacity queues: tenants are grouped into named queues
/// with capacity weights (summing to ~1.0). The pick orders queues by
/// capacity-normalized usage and takes the first queue with an eligible
/// tenant head — so under contention shares track capacities, while an
/// idle queue's capacity flows to the others (elastic, work-conserving).
/// Inside a queue, tenant selection is the same normalized-usage rule as
/// [`FairPolicy`].
#[derive(Debug)]
pub struct CapacityPolicy {
    /// Tenant id -> queue index (from the [`TenantTable`]).
    queue_of: Vec<usize>,
    n_queues: usize,
    queues: BTreeMap<TenantId, VecDeque<PendingJob>>,
    len: usize,
}

impl CapacityPolicy {
    pub fn new(table: &TenantTable) -> Self {
        Self {
            queue_of: table.tenants.iter().map(|t| t.queue).collect(),
            n_queues: table.queues.len(),
            queues: BTreeMap::new(),
            len: 0,
        }
    }

    fn queue_of(&self, tenant: TenantId) -> usize {
        self.queue_of.get(tenant.0 as usize).copied().unwrap_or(0)
    }
}

impl SchedulerPolicy for CapacityPolicy {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn enqueue(&mut self, job: PendingJob) {
        self.queues.entry(job.tenant).or_default().push_back(job);
        self.len += 1;
    }

    fn requeue(&mut self, job: PendingJob) {
        let queue = self.queues.entry(job.tenant).or_default();
        insert_by_seq(queue, job);
        self.len += 1;
    }

    fn pick(&mut self, now: f64, free: SideFree, shares: &ShareLedger) -> Option<PendingJob> {
        // Queue pass: most-under-capacity queue first.
        let mut order: Vec<usize> = (0..self.n_queues).collect();
        order.sort_by(|&a, &b| {
            shares
                .queue_norm_usage(a)
                .total_cmp(&shares.queue_norm_usage(b))
                .then(a.cmp(&b))
        });
        for q in order {
            let winner = self
                .queues
                .iter()
                .filter(|(t, _)| self.queue_of(**t) == q)
                .filter(|(_, jobs)| jobs.front().is_some_and(|j| eligible(j, now, free)))
                .min_by(|(ta, _), (tb, _)| {
                    shares
                        .norm_usage(**ta)
                        .total_cmp(&shares.norm_usage(**tb))
                        .then(ta.cmp(tb))
                })
                .map(|(t, _)| *t);
            if let Some(winner) = winner {
                let queue = self.queues.get_mut(&winner).expect("winner has a queue");
                let job = queue.pop_front();
                if queue.is_empty() {
                    self.queues.remove(&winner);
                }
                self.len -= 1;
                return job;
            }
        }
        None
    }

    fn queued(&self) -> usize {
        self.len
    }

    fn next_wake(&self, now: f64) -> Option<f64> {
        min_future_wake(self.queues.values().filter_map(|q| q.front()), now)
    }
}

/// The policy grid dimension used by experiments and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    Fifo,
    Fair,
    Capacity,
}

impl PolicyKind {
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Fifo, PolicyKind::Fair, PolicyKind::Capacity];

    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::Fair => "fair",
            PolicyKind::Capacity => "capacity",
        }
    }

    /// Instantiate the discipline for `table`.
    pub fn build(self, table: &TenantTable) -> Box<dyn SchedulerPolicy> {
        match self {
            PolicyKind::Fifo => Box::new(FifoPolicy::new()),
            PolicyKind::Fair => Box::new(FairPolicy::new()),
            PolicyKind::Capacity => Box::new(CapacityPolicy::new(table)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{QueueSpec, TenantSpec};

    fn table() -> TenantTable {
        TenantTable {
            queues: vec![
                QueueSpec {
                    name: "interactive",
                    capacity: 0.5,
                },
                QueueSpec {
                    name: "batch",
                    capacity: 0.5,
                },
            ],
            tenants: vec![
                TenantSpec {
                    id: TenantId(0),
                    weight: 1.0,
                    queue: 0,
                    slo_secs: None,
                },
                TenantSpec {
                    id: TenantId(1),
                    weight: 1.0,
                    queue: 1,
                    slo_secs: None,
                },
            ],
        }
    }

    fn job(seq: u64, tenant: u32, enqueued: f64) -> PendingJob {
        PendingJob {
            seq,
            job: seq as u32,
            tenant: TenantId(tenant),
            cost: 10.0,
            input_size: 1 << 30,
            enqueued,
            prefers_up: true,
            eligible_other_at: enqueued + 5.0,
            deadline: None,
        }
    }

    #[test]
    fn fifo_skips_ineligible_head() {
        let tbl = table();
        let ledger = ShareLedger::new(&tbl);
        let mut p = FifoPolicy::new();
        p.enqueue(job(0, 0, 0.0)); // prefers up, bound at 5.0
        p.enqueue(job(1, 1, 0.0));
        // Only the out side is free and the bound has not elapsed: nothing.
        let free = SideFree { up: 0, out: 1 };
        assert!(p.pick(0.0, free, &ledger).is_none());
        assert_eq!(p.next_wake(0.0), Some(5.0));
        // At the bound both are eligible; arrival order wins.
        let picked = p.pick(5.0, free, &ledger).unwrap();
        assert_eq!(picked.seq, 0);
    }

    #[test]
    fn fair_picks_lowest_normalized_usage() {
        let tbl = table();
        let mut ledger = ShareLedger::new(&tbl);
        let mut p = FairPolicy::new();
        p.enqueue(job(0, 0, 0.0));
        p.enqueue(job(1, 1, 0.0));
        ledger.charge(TenantId(0), 100.0);
        let free = SideFree { up: 1, out: 1 };
        let picked = p.pick(0.0, free, &ledger).unwrap();
        assert_eq!(picked.tenant, TenantId(1), "uncharged tenant goes first");
    }

    #[test]
    fn fair_requeue_restores_arrival_order() {
        let tbl = table();
        let ledger = ShareLedger::new(&tbl);
        let mut p = FairPolicy::new();
        p.enqueue(job(0, 0, 0.0));
        p.enqueue(job(2, 0, 1.0));
        let free = SideFree { up: 1, out: 1 };
        let first = p.pick(0.0, free, &ledger).unwrap();
        assert_eq!(first.seq, 0);
        p.requeue(first); // preempted: must come back ahead of seq 2
        assert_eq!(p.pick(0.0, free, &ledger).unwrap().seq, 0);
        assert_eq!(p.pick(0.0, free, &ledger).unwrap().seq, 2);
    }

    #[test]
    fn capacity_prefers_under_capacity_queue_but_is_work_conserving() {
        let tbl = table();
        let mut ledger = ShareLedger::new(&tbl);
        let mut p = CapacityPolicy::new(&tbl);
        p.enqueue(job(0, 0, 0.0)); // queue 0
        p.enqueue(job(1, 1, 0.0)); // queue 1
        ledger.charge(TenantId(0), 100.0); // queue 0 far over capacity
        let free = SideFree { up: 1, out: 1 };
        assert_eq!(p.pick(0.0, free, &ledger).unwrap().tenant, TenantId(1));
        // Queue 1 now empty: queue 0 still runs (elastic shares).
        assert_eq!(p.pick(0.0, free, &ledger).unwrap().tenant, TenantId(0));
        assert!(p.pick(0.0, free, &ledger).is_none());
    }
}
