//! Closed-loop cross-point calibration.
//!
//! The paper measures its cross points *offline* (Figures 7–8) and bakes
//! them into Algorithm 1; [`crate::calibrate`] makes that measurement step
//! reproducible but still one-shot. This module closes the loop at runtime:
//! an [`AdaptiveScheduler`] starts from a static [`CrossPointScheduler`],
//! watches per-job completions `(input size, shuffle-ratio band, routed
//! side, execution time)`, and periodically re-runs the same log-space
//! [`estimate_cross_point`] method over a bounded sliding window of paired
//! observations — so a deployment whose hardware, load, or workload mix
//! drifts away from the measured curves converges back to the crossover the
//! jobs actually observe.
//!
//! Three guards keep the loop deterministic and stable:
//!
//! * **Pairing.** Completions are grouped per band into logarithmic size
//!   buckets; a bucket contributes a synthetic [`SweepPoint`] only once it
//!   holds samples from *both* sides. With exploration off, only the single
//!   bucket straddling the live threshold can ever pair, which is one point
//!   short of a crossing — so thresholds provably never move and decisions
//!   stay bitwise-identical to the static policy.
//! * **Hysteresis.** A band recalibrates only every
//!   [`AdaptiveConfig::recalibrate_every`] completions, only with at least
//!   [`AdaptiveConfig::min_side_obs`] window samples per side, and each
//!   update moves the threshold at most [`AdaptiveConfig::max_step`]
//!   relative to its current value, clamped into
//!   `[min_threshold, max_threshold]`.
//! * **Exploration.** A [`DetRng`]-driven Bernoulli probe flips a decision
//!   with probability [`AdaptiveConfig::exploration`], so both sides keep
//!   receiving samples across the whole size range even after convergence.
//!   The draw is only taken when the rate is positive, preserving the
//!   exploration-off determinism guarantee above.

use crate::calibrate::{estimate_cross_point, SweepPoint};
use crate::placement::{CrossPointScheduler, Placement};
use mapreduce::JobSpec;
use simcore::rng::{substream, DetRng};
use std::collections::{BTreeMap, VecDeque};

/// Stable labels for the three Algorithm-1 ratio bands, in band-index order
/// (high ratio, mid ratio, map-intensive). They match
/// [`CrossPointScheduler::band_for`].
pub const BAND_LABELS: [&str; 3] = ["S/I>1", "0.4<=S/I<=1", "S/I<0.4"];

/// Index of the Algorithm-1 band a shuffle/input ratio falls in, using the
/// paper's inclusive boundaries (`0.4` and `1.0` belong to the mid band).
pub fn band_index(shuffle_input_ratio: f64) -> usize {
    if shuffle_input_ratio > 1.0 {
        0
    } else if shuffle_input_ratio >= 0.4 {
        1
    } else {
        2
    }
}

/// Tuning for the closed calibration loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Completions retained per band (sliding window).
    pub window: usize,
    /// Minimum window samples on *each* side before a band may recalibrate.
    pub min_side_obs: usize,
    /// Minimum samples per side inside a size bucket before the bucket
    /// contributes a paired sweep point.
    pub min_bucket_obs: usize,
    /// Size-bucket resolution: buckets per factor-of-two of input size.
    pub buckets_per_octave: u32,
    /// Completions between estimator runs for a band.
    pub recalibrate_every: usize,
    /// Maximum relative threshold change per update (0.25 = ±25%).
    pub max_step: f64,
    /// Probability of flipping a routing decision to sample the other side.
    /// Zero disables exploration *and* skips the RNG draw entirely, making
    /// decisions bitwise-identical to the static base policy.
    pub exploration: f64,
    /// Root seed of the exploration RNG stream.
    pub seed: u64,
    /// Absolute lower clamp for every threshold, bytes.
    pub min_threshold: u64,
    /// Absolute upper clamp for every threshold, bytes.
    pub max_threshold: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 512,
            min_side_obs: 12,
            min_bucket_obs: 1,
            buckets_per_octave: 2,
            recalibrate_every: 32,
            max_step: 0.25,
            exploration: 0.05,
            seed: 0xADA9_CA11,
            min_threshold: 256 << 20, // 256 MiB
            max_threshold: 256 << 30, // 256 GiB
        }
    }
}

/// One completed job as the estimator sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Input size in bytes.
    pub input_size: u64,
    /// Measured execution time in seconds (submit → completion).
    pub exec_secs: f64,
    /// True when the job ran on the scale-up side.
    pub ran_up: bool,
}

/// An audit record of one applied threshold update.
#[derive(Debug, Clone, PartialEq)]
pub struct Recalibration {
    /// Band label (one of [`BAND_LABELS`]).
    pub band: &'static str,
    /// Threshold before the update, bytes.
    pub old_bytes: u64,
    /// Threshold after hysteresis and clamping, bytes.
    pub new_bytes: u64,
    /// Raw cross-point estimate from the paired window, bytes.
    pub estimate_bytes: f64,
    /// True when the raw estimate was cut down by [`AdaptiveConfig::max_step`].
    pub stepped: bool,
    /// True when the absolute `[min_threshold, max_threshold]` clamp fired.
    pub clamped: bool,
    /// Scale-up samples in the band window at update time.
    pub window_up: usize,
    /// Scale-out samples in the band window at update time.
    pub window_out: usize,
    /// Total successful completions observed when the update was applied.
    pub completions: u64,
}

/// The routing verdict for one job, with the rationale the audit trail needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveDecision {
    /// Where the job goes (after any exploration flip).
    pub placement: Placement,
    /// The band that fired.
    pub band: &'static str,
    /// The live threshold the size was compared against, bytes.
    pub threshold: u64,
    /// True when exploration flipped the nominal choice.
    pub probe: bool,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct BandState {
    pub(crate) window: VecDeque<Observation>,
    pub(crate) up_n: usize,
    pub(crate) out_n: usize,
    pub(crate) since_recal: usize,
}

/// Algorithm 1 with runtime-adapted cross points. See the module docs for
/// the estimator, hysteresis, and exploration semantics.
#[derive(Debug, Clone)]
pub struct AdaptiveScheduler {
    pub(crate) base: CrossPointScheduler,
    pub(crate) cfg: AdaptiveConfig,
    pub(crate) rng: DetRng,
    pub(crate) bands: [BandState; 3],
    pub(crate) recalibrations: Vec<Recalibration>,
    pub(crate) completions: u64,
}

impl Default for AdaptiveScheduler {
    fn default() -> Self {
        Self::new(AdaptiveConfig::default())
    }
}

impl AdaptiveScheduler {
    /// Start from the paper's published thresholds.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        Self::with_base(CrossPointScheduler::default(), cfg)
    }

    /// Start from explicit initial thresholds (e.g. an offline calibration,
    /// or a deliberately wrong guess in a convergence experiment). The
    /// unknown-ratio fallback is not adaptive — the base's
    /// `assume_unknown_ratio` flag is cleared.
    pub fn with_base(mut base: CrossPointScheduler, cfg: AdaptiveConfig) -> Self {
        base.assume_unknown_ratio = false;
        let rng = substream(cfg.seed, 0xEC5);
        AdaptiveScheduler {
            base,
            cfg,
            rng,
            bands: Default::default(),
            recalibrations: Vec::new(),
            completions: 0,
        }
    }

    /// The live thresholds as a static scheduler (a snapshot; it does not
    /// track later updates).
    pub fn snapshot(&self) -> CrossPointScheduler {
        self.base.clone()
    }

    /// The configuration the loop runs with.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Every applied threshold update, in order.
    pub fn recalibrations(&self) -> &[Recalibration] {
        &self.recalibrations
    }

    /// Successful completions observed so far.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// The live threshold for a band index (see [`band_index`]).
    pub fn threshold_of(&self, band: usize) -> u64 {
        match band {
            0 => self.base.high_ratio_threshold,
            1 => self.base.mid_ratio_threshold,
            _ => self.base.map_intensive_threshold,
        }
    }

    fn threshold_mut(&mut self, band: usize) -> &mut u64 {
        match band {
            0 => &mut self.base.high_ratio_threshold,
            1 => &mut self.base.mid_ratio_threshold,
            _ => &mut self.base.map_intensive_threshold,
        }
    }

    /// Route one job with the live thresholds, possibly flipped by an
    /// exploration probe.
    pub fn route(&mut self, job: &JobSpec) -> AdaptiveDecision {
        let ratio = job.profile.shuffle_input_ratio;
        let band = band_index(ratio);
        let threshold = self.threshold_of(band);
        let nominal = if job.input_size < threshold {
            Placement::ScaleUp
        } else {
            Placement::ScaleOut
        };
        // The `> 0.0` gate (not just `chance`'s internal one) documents the
        // determinism contract at the call site: with exploration disabled
        // the RNG is never consulted, so the decision stream is a pure
        // function of the static thresholds.
        let probe = self.cfg.exploration > 0.0 && self.rng.chance(self.cfg.exploration);
        let placement = match (nominal, probe) {
            (p, false) => p,
            (Placement::ScaleUp, true) => Placement::ScaleOut,
            (Placement::ScaleOut, true) => Placement::ScaleUp,
        };
        AdaptiveDecision {
            placement,
            band: BAND_LABELS[band],
            threshold,
            probe,
        }
    }

    /// Route a queue of pending jobs against one coherent view of the live
    /// thresholds.
    ///
    /// The three band thresholds are loaded once and reused across the
    /// whole batch — no recalibration can interleave, so a serving loop
    /// draining N pending specs pays the threshold loads once instead of N
    /// times. Exploration draws are still taken per job in submission
    /// order, so the returned decisions are bitwise-identical to N
    /// sequential [`AdaptiveScheduler::route`] calls and leave the RNG at
    /// the same stream position.
    pub fn route_batch<'a>(
        &mut self,
        jobs: impl IntoIterator<Item = &'a JobSpec>,
    ) -> Vec<AdaptiveDecision> {
        let thresholds = [
            self.base.high_ratio_threshold,
            self.base.mid_ratio_threshold,
            self.base.map_intensive_threshold,
        ];
        let exploration = self.cfg.exploration;
        let jobs = jobs.into_iter();
        let mut out = Vec::with_capacity(jobs.size_hint().0);
        for job in jobs {
            let band = band_index(job.profile.shuffle_input_ratio);
            let threshold = thresholds[band];
            let nominal = if job.input_size < threshold {
                Placement::ScaleUp
            } else {
                Placement::ScaleOut
            };
            let probe = exploration > 0.0 && self.rng.chance(exploration);
            let placement = match (nominal, probe) {
                (p, false) => p,
                (Placement::ScaleUp, true) => Placement::ScaleOut,
                (Placement::ScaleOut, true) => Placement::ScaleUp,
            };
            out.push(AdaptiveDecision {
                placement,
                band: BAND_LABELS[band],
                threshold,
                probe,
            });
        }
        out
    }

    /// Feed one completed job back into the loop. Returns the applied
    /// recalibration when this completion triggered a threshold update.
    ///
    /// Non-finite or non-positive execution times and zero-size inputs are
    /// rejected (a failed job carries no cost signal), mirroring the input
    /// hardening in [`estimate_cross_point`].
    pub fn observe(
        &mut self,
        input_size: u64,
        shuffle_input_ratio: f64,
        ran_up: bool,
        exec_secs: f64,
    ) -> Option<Recalibration> {
        if !(exec_secs.is_finite() && exec_secs > 0.0) || input_size == 0 {
            return None;
        }
        self.completions += 1;
        let band = band_index(shuffle_input_ratio);
        let window_cap = self.cfg.window.max(1);
        let st = &mut self.bands[band];
        if st.window.len() == window_cap {
            let old = st.window.pop_front().expect("window is non-empty at cap");
            if old.ran_up {
                st.up_n -= 1;
            } else {
                st.out_n -= 1;
            }
        }
        st.window.push_back(Observation {
            input_size,
            exec_secs,
            ran_up,
        });
        if ran_up {
            st.up_n += 1;
        } else {
            st.out_n += 1;
        }
        st.since_recal += 1;
        if st.since_recal < self.cfg.recalibrate_every.max(1)
            || st.up_n < self.cfg.min_side_obs
            || st.out_n < self.cfg.min_side_obs
        {
            return None;
        }
        st.since_recal = 0;
        let (up_n, out_n) = (st.up_n, st.out_n);
        let estimate = estimate_from_observations(
            st.window.iter().copied(),
            self.cfg.buckets_per_octave,
            self.cfg.min_bucket_obs,
        )?;
        self.apply_update(band, estimate, up_n, out_n)
    }

    fn apply_update(
        &mut self,
        band: usize,
        estimate: f64,
        window_up: usize,
        window_out: usize,
    ) -> Option<Recalibration> {
        let old = self.threshold_of(band);
        let step = self.cfg.max_step.max(0.0);
        let step_lo = old as f64 * (1.0 - step);
        let step_hi = old as f64 * (1.0 + step);
        let stepped = estimate < step_lo || estimate > step_hi;
        let walked = estimate.clamp(step_lo, step_hi);
        let (clamp_lo, clamp_hi) = (
            self.cfg.min_threshold as f64,
            self.cfg.max_threshold.max(self.cfg.min_threshold) as f64,
        );
        let clamped = walked < clamp_lo || walked > clamp_hi;
        let new_bytes = walked.clamp(clamp_lo, clamp_hi).round() as u64;
        if new_bytes == old {
            return None;
        }
        *self.threshold_mut(band) = new_bytes;
        let rec = Recalibration {
            band: BAND_LABELS[band],
            old_bytes: old,
            new_bytes,
            estimate_bytes: estimate,
            stepped,
            clamped,
            window_up,
            window_out,
            completions: self.completions,
        };
        self.recalibrations.push(rec.clone());
        Some(rec)
    }
}

/// Pair a window of completions into synthetic sweep points and run the
/// offline cross-point estimator over them.
///
/// Observations are grouped into logarithmic size buckets
/// (`buckets_per_octave` per factor of two); a bucket with at least
/// `min_bucket_obs` samples on *each* side becomes one [`SweepPoint`] with
/// the per-side mean execution times. The point's representative size is the
/// geometric mean of the *per-side* geometric-mean sizes — not the pooled
/// mean over all samples, which would drift toward whichever side happens to
/// hold more (or larger) samples inside the bucket and skew the estimated
/// cross point whenever the sides cluster at opposite ends of a bucket. The
/// window is sorted on a total order (size, time, side) before accumulation,
/// so the result is invariant under any permutation of the input — floating
/// summation order included.
pub fn estimate_from_observations(
    window: impl IntoIterator<Item = Observation>,
    buckets_per_octave: u32,
    min_bucket_obs: usize,
) -> Option<f64> {
    #[derive(Default)]
    struct Bucket {
        up_ln_size_sum: f64,
        out_ln_size_sum: f64,
        up_sum: f64,
        up_n: usize,
        out_sum: f64,
        out_n: usize,
    }

    let mut obs: Vec<Observation> = window
        .into_iter()
        .filter(|o| o.input_size > 0 && o.exec_secs.is_finite() && o.exec_secs > 0.0)
        .collect();
    obs.sort_by(|a, b| {
        a.input_size
            .cmp(&b.input_size)
            .then(a.exec_secs.total_cmp(&b.exec_secs))
            .then(a.ran_up.cmp(&b.ran_up))
    });

    let bpo = buckets_per_octave.max(1) as f64;
    let mut buckets: BTreeMap<i64, Bucket> = BTreeMap::new();
    for o in &obs {
        let key = ((o.input_size as f64).log2() * bpo).floor() as i64;
        let b = buckets.entry(key).or_default();
        if o.ran_up {
            b.up_ln_size_sum += (o.input_size as f64).ln();
            b.up_sum += o.exec_secs;
            b.up_n += 1;
        } else {
            b.out_ln_size_sum += (o.input_size as f64).ln();
            b.out_sum += o.exec_secs;
            b.out_n += 1;
        }
    }

    let min_n = min_bucket_obs.max(1);
    let points: Vec<SweepPoint> = buckets
        .values()
        .filter(|b| b.up_n >= min_n && b.out_n >= min_n)
        .map(|b| {
            let up_ln = b.up_ln_size_sum / b.up_n as f64;
            let out_ln = b.out_ln_size_sum / b.out_n as f64;
            SweepPoint {
                input_size: ((up_ln + out_ln) / 2.0).exp(),
                t_up: b.up_sum / b.up_n as f64,
                t_out: b.out_sum / b.out_n as f64,
            }
        })
        .collect();
    estimate_cross_point(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{ClusterLoads, JobPlacement};
    use mapreduce::JobProfile;

    const GB: u64 = 1 << 30;

    fn job(ratio: f64, size: u64) -> JobSpec {
        JobSpec::at_zero(0, JobProfile::basic("t", ratio, 0.1), size)
    }

    fn obs(size: u64, exec: f64, up: bool) -> Observation {
        Observation {
            input_size: size,
            exec_secs: exec,
            ran_up: up,
        }
    }

    /// A synthetic workload whose true cross point is `cross_gb`: up time
    /// grows superlinearly past the cross, out time linearly with overhead.
    fn synthetic_obs(size: u64, up: bool, cross_gb: f64) -> Observation {
        let gb = size as f64 / GB as f64;
        let exec = if up {
            10.0 * gb * (1.0 + gb / cross_gb)
        } else {
            20.0 * gb
        };
        obs(size, exec, up)
    }

    #[test]
    fn no_exploration_matches_static_decisions() {
        let mut a = AdaptiveScheduler::new(AdaptiveConfig {
            exploration: 0.0,
            ..Default::default()
        });
        let s = CrossPointScheduler::default();
        for (ratio, size) in [
            (1.6, 31 * GB),
            (1.6, 32 * GB),
            (0.4, 15 * GB),
            (1.0, 16 * GB),
            (0.0, 9 * GB),
            (0.39, 10 * GB),
        ] {
            let j = job(ratio, size);
            let d = a.route(&j);
            let expect = s.place(&j, &ClusterLoads::default());
            assert_eq!(d.placement, expect, "ratio {ratio} size {size}");
            assert!(!d.probe);
            assert_eq!(d.threshold, s.threshold_for(ratio));
        }
    }

    #[test]
    fn exploration_flips_some_decisions_deterministically() {
        let cfg = AdaptiveConfig {
            exploration: 0.5,
            ..Default::default()
        };
        let run = || {
            let mut a = AdaptiveScheduler::new(cfg.clone());
            (0..64)
                .map(|i| a.route(&job(0.5, (i + 1) * GB)).probe)
                .collect::<Vec<_>>()
        };
        let probes = run();
        assert!(probes.iter().any(|&p| p), "some probes fire at rate 0.5");
        assert!(!probes.iter().all(|&p| p), "not every decision is a probe");
        assert_eq!(probes, run(), "same seed, same probe sequence");
    }

    #[test]
    fn route_batch_is_bitwise_equal_to_sequential_routes() {
        let cfg = AdaptiveConfig {
            exploration: 0.5, // high rate so probes exercise both flips
            ..Default::default()
        };
        let jobs: Vec<JobSpec> = (0..96)
            .map(|i| job([1.6, 0.7, 0.1][i % 3], (i as u64 % 40 + 1) * GB))
            .collect();
        let mut seq = AdaptiveScheduler::new(cfg.clone());
        let mut bat = AdaptiveScheduler::new(cfg);
        let one_by_one: Vec<AdaptiveDecision> = jobs.iter().map(|j| seq.route(j)).collect();
        let batched = bat.route_batch(&jobs);
        assert_eq!(batched, one_by_one);
        // Both schedulers sit at the same RNG position afterwards.
        let probe_job = job(0.7, GB);
        assert_eq!(seq.route(&probe_job), bat.route(&probe_job));
    }

    #[test]
    fn thresholds_never_move_without_paired_buckets() {
        // All completions on one side: nothing can pair, so even thousands
        // of observations leave the thresholds untouched.
        let mut a = AdaptiveScheduler::new(AdaptiveConfig {
            exploration: 0.0,
            ..Default::default()
        });
        let before = a.snapshot();
        for i in 0..2000u64 {
            a.observe(GB + i, 0.5, true, 12.5 + i as f64 * 0.001);
        }
        assert_eq!(a.snapshot(), before);
        assert!(a.recalibrations().is_empty());
    }

    #[test]
    fn paired_window_converges_toward_the_true_cross() {
        let cross_gb = 24.0;
        let mut a = AdaptiveScheduler::with_base(
            CrossPointScheduler {
                mid_ratio_threshold: 8 * GB,
                ..Default::default()
            },
            AdaptiveConfig {
                exploration: 0.0, // feed both sides by hand instead
                ..Default::default()
            },
        );
        // Log-spaced sizes from 1–64 GB, both sides at every size.
        let mut updates = 0;
        for round in 0..40 {
            for i in 0..13u32 {
                let size = (GB as f64 * 2f64.powf(i as f64 / 2.0)) as u64 + round;
                for up in [true, false] {
                    if a.observe(size, 0.7, up, synthetic_obs(size, up, cross_gb).exec_secs)
                        .is_some()
                    {
                        updates += 1;
                    }
                }
            }
        }
        assert!(updates > 0, "paired data must recalibrate");
        let got = a.threshold_of(1) as f64 / GB as f64;
        assert!(
            (got / cross_gb - 1.0).abs() < 0.15,
            "mid threshold {got:.1} GB vs true cross {cross_gb} GB"
        );
        // Audit trail recorded every applied step.
        assert_eq!(a.recalibrations().len(), updates);
        for r in a.recalibrations() {
            assert_eq!(r.band, BAND_LABELS[1]);
            assert!(r.new_bytes != r.old_bytes);
        }
    }

    #[test]
    fn hysteresis_limits_relative_step_and_clamps() {
        let cfg = AdaptiveConfig {
            max_step: 0.25,
            min_threshold: 4 * GB,
            max_threshold: 64 * GB,
            ..Default::default()
        };
        let mut a = AdaptiveScheduler::new(cfg);
        // A wild estimate far above the current threshold moves at most 25%.
        let old = a.threshold_of(0);
        let rec = a
            .apply_update(0, 1e13, 50, 50)
            .expect("estimate differs from threshold");
        assert!(rec.stepped);
        assert_eq!(rec.new_bytes, (old as f64 * 1.25).round() as u64);
        // A tiny estimate walks down 25% per step until the absolute clamp.
        let mut last = rec.new_bytes;
        for _ in 0..20 {
            match a.apply_update(0, 1.0, 50, 50) {
                Some(r) => {
                    assert!(r.new_bytes >= 4 * GB);
                    assert!(r.new_bytes as f64 >= last as f64 * 0.75 - 1.0);
                    last = r.new_bytes;
                }
                None => break,
            }
        }
        assert_eq!(a.threshold_of(0), 4 * GB, "settles on the clamp");
        assert!(a.recalibrations().iter().any(|r| r.clamped));
    }

    #[test]
    fn estimator_is_permutation_invariant() {
        let mut window: Vec<Observation> = Vec::new();
        for i in 0..12u32 {
            let size = (GB as f64 * 2f64.powf(i as f64 / 2.0)) as u64;
            window.push(synthetic_obs(size, true, 16.0));
            window.push(synthetic_obs(size + 7, false, 16.0));
        }
        let base = estimate_from_observations(window.iter().copied(), 2, 1).unwrap();
        // A handful of deterministic shuffles, including reversal.
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..8 {
            let mut perm = window.clone();
            for i in (1..perm.len()).rev() {
                perm.swap(i, rng.range_usize(0, i + 1));
            }
            let got = estimate_from_observations(perm.iter().copied(), 2, 1).unwrap();
            assert_eq!(got.to_bits(), base.to_bits(), "bitwise-equal estimate");
        }
        window.reverse();
        let rev = estimate_from_observations(window.iter().copied(), 2, 1).unwrap();
        assert_eq!(rev.to_bits(), base.to_bits());
    }

    #[test]
    fn bucket_size_ignores_per_side_sample_imbalance() {
        // Two buckets, each with the sides clustered at opposite ends: the
        // scale-up samples sit low in the bucket, the scale-out samples
        // high. Duplicating one side's samples must not move the estimate —
        // a pooled bucket-size mean would drift ~20% toward the duplicated
        // side, which is exactly the bias this guards against.
        let balanced = vec![
            // Bucket [8, 16) GB: scale-up faster.
            obs(9 * GB, 10.0, true),
            obs(15 * GB, 20.0, false),
            // Bucket [32, 64) GB: scale-out faster.
            obs(33 * GB, 40.0, true),
            obs(60 * GB, 30.0, false),
        ];
        let mut skewed = balanced.clone();
        for o in balanced.iter().filter(|o| !o.ran_up).copied() {
            for _ in 0..8 {
                skewed.push(o);
            }
        }
        let a = estimate_from_observations(balanced.iter().copied(), 1, 1).unwrap();
        let b = estimate_from_observations(skewed.iter().copied(), 1, 1).unwrap();
        assert!(
            (b / a - 1.0).abs() < 1e-12,
            "per-side counts skewed the estimate: balanced {a:.3e} vs skewed {b:.3e}"
        );
        // Sanity: the crossing sits between the two buckets' balanced
        // geometric-mean representative sizes.
        let lo = (((9 * GB) as f64).ln() + ((15 * GB) as f64).ln()) / 2.0;
        let hi = (((33 * GB) as f64).ln() + ((60 * GB) as f64).ln()) / 2.0;
        assert!(a > lo.exp() && a < hi.exp(), "estimate {a:.3e} out of band");
    }

    #[test]
    fn invalid_completions_are_rejected() {
        let mut a = AdaptiveScheduler::default();
        assert_eq!(a.observe(GB, 0.5, true, f64::NAN), None);
        assert_eq!(a.observe(GB, 0.5, true, 0.0), None);
        assert_eq!(a.observe(GB, 0.5, true, -3.0), None);
        assert_eq!(a.observe(0, 0.5, true, 10.0), None);
        assert_eq!(a.completions(), 0, "rejected samples are not counted");
        assert!(a.bands.iter().all(|b| b.window.is_empty()));
    }

    #[test]
    fn window_is_bounded_and_slides() {
        let mut a = AdaptiveScheduler::new(AdaptiveConfig {
            window: 16,
            recalibrate_every: usize::MAX, // isolate the window mechanics
            ..Default::default()
        });
        for i in 0..100u64 {
            a.observe(GB + i, 0.5, i % 2 == 0, 10.0);
        }
        let st = &a.bands[1];
        assert_eq!(st.window.len(), 16);
        assert_eq!(st.up_n + st.out_n, 16);
        assert_eq!(st.window.front().unwrap().input_size, GB + 84);
    }

    #[test]
    fn band_index_matches_static_band_labels() {
        let s = CrossPointScheduler::default();
        for ratio in [0.0, 0.39, 0.4, 0.7, 1.0, 1.1, 2.2] {
            assert_eq!(BAND_LABELS[band_index(ratio)], s.band_for(ratio));
        }
    }
}
