//! Cross-point estimation from measurement sweeps.
//!
//! The paper derives its thresholds by eyeballing where the normalized
//! out/up execution-time curve crosses 1 (Figures 7 and 8). This module
//! makes that step reproducible: given a sweep of `(input size, t_up,
//! t_out)` points it locates the crossover by log-space interpolation, so
//! "other designers can follow the same method to measure the cross points
//! in their systems" (paper §IV) without manual reading of plots.

/// One sweep sample: input size in bytes and the measured execution times
/// (seconds) on the two clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Input size in bytes.
    pub input_size: f64,
    /// Execution time on the scale-up cluster.
    pub t_up: f64,
    /// Execution time on the scale-out cluster.
    pub t_out: f64,
}

impl SweepPoint {
    /// The Figure 7/8 y-value: out-time normalized by up-time. Below 1 the
    /// scale-out cluster wins.
    pub fn normalized_out(&self) -> f64 {
        self.t_out / self.t_up
    }
}

/// Estimate the cross point: the input size where `t_up == t_out`.
///
/// Points are sorted by size internally. Samples that cannot come from a
/// real measurement — non-finite or non-positive sizes or times — are
/// dropped before estimation, so a failed run (`NaN`), an unstarted timer
/// (`0`) or an overflowed size cannot poison the interpolation. Returns
/// `None` when fewer than two valid points remain or when the sweep never
/// brackets a crossing in the expected direction (up faster at small sizes
/// → out faster at large sizes). When several sign changes exist
/// (measurement noise), the *last* down-crossing is returned, matching how
/// the paper reads its (monotone-trending) curves.
pub fn estimate_cross_point(points: &[SweepPoint]) -> Option<f64> {
    let finite_pos = |v: f64| v.is_finite() && v > 0.0;
    let mut pts: Vec<SweepPoint> = points
        .iter()
        .filter(|p| finite_pos(p.input_size) && finite_pos(p.t_up) && finite_pos(p.t_out))
        .copied()
        .collect();
    if pts.len() < 2 {
        return None;
    }
    pts.sort_by(|a, b| a.input_size.total_cmp(&b.input_size));
    let margin = |p: &SweepPoint| p.t_out - p.t_up; // >0 ⇒ scale-up wins
    let mut cross = None;
    for w in pts.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let (ma, mb) = (margin(a), margin(b));
        if ma > 0.0 && mb <= 0.0 {
            // Interpolate in log-size where the margin hits zero.
            let f = ma / (ma - mb);
            let ls = a.input_size.ln() + f * (b.input_size.ln() - a.input_size.ln());
            cross = Some(ls.exp());
        }
    }
    cross
}

/// Derive a [`crate::CrossPointScheduler`] from three sweeps, one per ratio
/// band, falling back to the paper's published thresholds for bands whose
/// sweep does not produce a crossing.
pub fn calibrate_scheduler(
    high_ratio_sweep: &[SweepPoint],
    mid_ratio_sweep: &[SweepPoint],
    map_intensive_sweep: &[SweepPoint],
) -> crate::CrossPointScheduler {
    let default = crate::CrossPointScheduler::default();
    crate::CrossPointScheduler {
        high_ratio_threshold: estimate_cross_point(high_ratio_sweep)
            .map(|x| x as u64)
            .unwrap_or(default.high_ratio_threshold),
        mid_ratio_threshold: estimate_cross_point(mid_ratio_sweep)
            .map(|x| x as u64)
            .unwrap_or(default.mid_ratio_threshold),
        map_intensive_threshold: estimate_cross_point(map_intensive_sweep)
            .map(|x| x as u64)
            .unwrap_or(default.map_intensive_threshold),
        assume_unknown_ratio: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(size_gb: f64, t_up: f64, t_out: f64) -> SweepPoint {
        SweepPoint {
            input_size: size_gb * (1u64 << 30) as f64,
            t_up,
            t_out,
        }
    }

    #[test]
    fn clean_crossing_is_interpolated() {
        // up wins below ~16 GB, out wins above.
        let sweep = vec![
            pt(1.0, 10.0, 14.0),
            pt(8.0, 40.0, 48.0),
            pt(32.0, 200.0, 150.0),
            pt(64.0, 450.0, 280.0),
        ];
        let x = estimate_cross_point(&sweep).unwrap();
        let gb = x / (1u64 << 30) as f64;
        assert!(gb > 8.0 && gb < 32.0, "cross at {gb} GB");
    }

    #[test]
    fn exact_equality_at_a_sample_counts_as_crossing() {
        let sweep = vec![pt(1.0, 10.0, 12.0), pt(16.0, 100.0, 100.0)];
        let x = estimate_cross_point(&sweep).unwrap();
        assert!((x / (16.0 * (1u64 << 30) as f64) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_crossing_returns_none() {
        // Scale-out always wins (e.g. a degenerate hardware config).
        let sweep = vec![pt(1.0, 20.0, 10.0), pt(64.0, 300.0, 100.0)];
        assert_eq!(estimate_cross_point(&sweep), None);
        assert_eq!(estimate_cross_point(&[]), None);
        assert_eq!(estimate_cross_point(&[pt(1.0, 5.0, 9.0)]), None);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let sweep = vec![
            pt(64.0, 450.0, 280.0),
            pt(1.0, 10.0, 14.0),
            pt(8.0, 40.0, 48.0),
        ];
        assert!(estimate_cross_point(&sweep).is_some());
    }

    #[test]
    fn calibrate_falls_back_per_band() {
        let good = vec![pt(1.0, 10.0, 14.0), pt(64.0, 450.0, 280.0)];
        let bad: Vec<SweepPoint> = vec![];
        let s = calibrate_scheduler(&good, &bad, &good);
        let default = crate::CrossPointScheduler::default();
        assert_ne!(s.high_ratio_threshold, default.high_ratio_threshold);
        assert_eq!(s.mid_ratio_threshold, default.mid_ratio_threshold);
    }

    #[test]
    fn normalized_out_matches_figures() {
        let p = pt(4.0, 10.0, 12.5);
        assert!((p.normalized_out() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn duplicate_sizes_do_not_break_the_estimate() {
        // A re-measured size produces two samples at the same x; the
        // zero-width window between them can never be the crossing segment
        // (log-interpolation inside it would be degenerate), and the
        // surrounding windows still bracket the sign change.
        let sweep = vec![
            pt(1.0, 10.0, 14.0),
            pt(8.0, 40.0, 48.0),
            pt(8.0, 41.0, 47.0),
            pt(32.0, 200.0, 150.0),
        ];
        let x = estimate_cross_point(&sweep).unwrap();
        let gb = x / (1u64 << 30) as f64;
        assert!(gb > 8.0 && gb < 32.0, "cross at {gb} GB");
        assert!(x.is_finite());
    }

    #[test]
    fn zero_and_nan_samples_are_rejected() {
        // Only the two poisoned points are dropped; the remaining valid
        // bracket still yields the crossing.
        let sweep = vec![
            pt(1.0, 10.0, 14.0),
            pt(4.0, 0.0, 30.0),       // timer never started
            pt(16.0, f64::NAN, 90.0), // failed run
            pt(8.0, 40.0, 48.0),
            pt(32.0, 200.0, 150.0),
        ];
        let clean = vec![
            pt(1.0, 10.0, 14.0),
            pt(8.0, 40.0, 48.0),
            pt(32.0, 200.0, 150.0),
        ];
        assert_eq!(estimate_cross_point(&sweep), estimate_cross_point(&clean));

        // A sweep with fewer than two valid points has nothing to bracket.
        let all_bad = vec![pt(1.0, f64::NAN, 14.0), pt(8.0, 40.0, f64::INFINITY)];
        assert_eq!(estimate_cross_point(&all_bad), None);
        let negative_size = vec![
            SweepPoint {
                input_size: -1.0,
                t_up: 1.0,
                t_out: 2.0,
            },
            pt(8.0, 40.0, 48.0),
        ];
        assert_eq!(estimate_cross_point(&negative_size), None);
    }

    #[test]
    fn noisy_multi_crossing_takes_the_last_down_crossing() {
        // Noise makes the margin dip below zero early, recover, then cross
        // for good: the estimator reads the curve the way the paper does and
        // reports the final crossing.
        let noisy = vec![
            pt(1.0, 10.0, 14.0),
            pt(2.0, 20.0, 19.0), // noise: early dip
            pt(4.0, 30.0, 35.0), // recovers
            pt(16.0, 100.0, 90.0),
            pt(64.0, 450.0, 280.0),
        ];
        let x_noisy = estimate_cross_point(&noisy).unwrap();
        let single = vec![pt(4.0, 30.0, 35.0), pt(16.0, 100.0, 90.0)];
        let x_single = estimate_cross_point(&single).unwrap();
        // The last down-crossing is the 4→16 GB window in both sweeps.
        assert!((x_noisy / x_single - 1.0).abs() < 1e-12);
        let gb = x_noisy / (1u64 << 30) as f64;
        assert!(gb > 4.0 && gb < 16.0, "cross at {gb} GB");
    }
}
