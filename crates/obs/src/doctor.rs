//! `obs::doctor` — deterministic online anomaly detection and diagnosis.
//!
//! A [`Doctor`] is a passive [`TelemetrySink`]: it folds the same event
//! stream the [`crate::OnlineAggregator`] consumes and turns it into
//! *alerts* and *incident reports* — the alerting/diagnosis layer a
//! production scheduler ships with, but DetRng-free and fold-order
//! deterministic, so the reports are byte-identical at any `--threads`.
//!
//! Four detectors run over the stream:
//!
//! - **Straggler** — a robust modified z-score on `ln(exec)` per
//!   (band, cluster, size-class) key, with the median and MAD estimated
//!   from a fixed log-spaced histogram (O(1) memory per key). A job whose
//!   execution time sits more than [`DoctorConfig::straggler_z`] robust
//!   deviations above its class median fires, then the key is muted for
//!   [`DoctorConfig::straggler_cooldown`] samples so one storm produces one
//!   incident, not hundreds.
//! - **SLO burn-rate** — the SRE multi-window rule per tenant queue: the
//!   SLO-miss fraction over a fast (5 sim-minutes) *and* a slow (1
//!   sim-hour) window must both exceed their thresholds, expressed as
//!   multiples of the error budget ([`DoctorConfig::burn_budget`]). The
//!   alert stays open until the fast window recovers; open/close
//!   transitions — not samples — fire incidents.
//! - **Cross-point oscillation** — watches `("scheduler","recalibrate")`
//!   instants per band. Many direction flips inside the recent window is
//!   *thrashing* (`crosspoint-thrash`); a large sustained one-directional
//!   move is *legitimate drift* (`crosspoint-drift`). Both are worth an
//!   incident; the distinction is the diagnosis. The first
//!   [`DoctorConfig::warmup_recals`] recalibrations per band are burn-in:
//!   an adaptive estimator converging from its default priors marches the
//!   threshold monotonically, which would otherwise read as drift. And
//!   only moves of at least [`DoctorConfig::recal_min_step`] enter the
//!   window — a converged estimator hunts around its equilibrium in tiny
//!   steps whose direction flips are noise, not thrash.
//! - **Share violation** — at stream end, a tenant whose weight-normalized
//!   usage sits far below the ledger mean *and* who was repeatedly
//!   preempted or rejected is flagged as starved.
//!
//! Every alert snapshots the **flight recorder** — a fixed-capacity ring of
//! recent fault / recalibration / placement / tenant events (including the
//! `PlacementDecision::explain` audit notes) — into a deterministic JSON
//! incident document, schema `hybrid-hadoop-incident/v1`.
//!
//! The whole doctor state round-trips through [`Doctor::snapshot_json`] /
//! [`Doctor::restore`] (schema `hybrid-hadoop-doctor/v1`) so a restarted
//! serve session neither re-fires nor drops an in-flight alert.

use crate::sink::TelemetrySink;
use crate::telemetry::{arg_bool, arg_f64, arg_str, arg_u64, band_of, json_string, names, num};
use crate::ArgValue;
use simcore::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// Alert kinds, shared verbatim between the `hh_doctor_alerts_total{kind=…}`
/// Prometheus labels and the incident JSON — one constant table, no fork.
pub mod kinds {
    /// A job far above its (band, cluster, size-class) robust baseline.
    pub const STRAGGLER: &str = "straggler";
    /// Multi-window SLO burn-rate exceeded for a tenant queue.
    pub const BURN_RATE: &str = "burn-rate";
    /// Cross-point recalibrations flipping direction — thrashing.
    pub const CROSSPOINT_THRASH: &str = "crosspoint-thrash";
    /// Sustained one-directional cross-point movement — workload drift.
    pub const CROSSPOINT_DRIFT: &str = "crosspoint-drift";
    /// A tenant starved well below its weighted fair share.
    pub const SHARE_VIOLATION: &str = "share-violation";
    /// Background repair traffic (re-replication / EC reconstruction)
    /// saturating the window — a correlated-failure recovery storm.
    pub const REPAIR_STORM: &str = "repair-storm";
    /// Every kind, in exposition order.
    pub const ALL: &[&str] = &[
        STRAGGLER,
        BURN_RATE,
        CROSSPOINT_THRASH,
        CROSSPOINT_DRIFT,
        SHARE_VIOLATION,
        REPAIR_STORM,
    ];
}

/// Tuning for the doctor's detectors and bounded state.
///
/// Defaults are calibrated on the FB-2009 re-synthesis: a clean (no-fault,
/// no-drift) 10k replay fires zero alerts, while injected rack failures and
/// combined drift are detected (the `doctor` binary's precision/recall table
/// and `tests/doctor_golden.rs` pin both).
#[derive(Debug, Clone, PartialEq)]
pub struct DoctorConfig {
    /// Flight-recorder capacity (events); memory is O(capacity) regardless
    /// of job count.
    pub ring_capacity: usize,
    /// Ring events snapshotted into each incident report.
    pub incident_window: usize,
    /// Incident reports retained; later alerts still count in
    /// `alerts_total` but only bump `dropped_incidents`.
    pub max_incidents: usize,
    /// Samples a (band, cluster, size-class) key needs before its z-score
    /// can fire.
    pub straggler_min_samples: u64,
    /// Modified z-score threshold on `ln(exec)`.
    pub straggler_z: f64,
    /// Samples a key stays muted after firing.
    pub straggler_cooldown: u64,
    /// SLO error budget: the allowed miss fraction.
    pub burn_budget: f64,
    /// Fast burn window (sim-seconds).
    pub burn_fast_secs: u64,
    /// Slow burn window (sim-seconds).
    pub burn_slow_secs: u64,
    /// Fast-window burn-rate threshold (multiples of budget).
    pub burn_fast_rate: f64,
    /// Slow-window burn-rate threshold (multiples of budget).
    pub burn_slow_rate: f64,
    /// Minimum SLO-carrying jobs per window before a rate is trusted.
    pub burn_min_jobs: u64,
    /// Recalibrations per band ignored before the oscillation detector
    /// arms: an adaptive estimator converging from its default priors
    /// walks its threshold monotonically toward the data regime, which is
    /// burn-in, not drift.
    pub warmup_recals: usize,
    /// Minimum relative threshold movement (`|new-old|/old`) for a
    /// recalibration to enter the oscillation window. A converged
    /// estimator hunts around its equilibrium in sub-10% steps whose signs
    /// are noise; only significant moves carry drift/thrash information.
    pub recal_min_step: f64,
    /// A band whose *first* recalibration arrives more than this many
    /// sim-seconds after the earliest band's first recalibration skips
    /// warm-up entirely: default-prior convergence happens when a band
    /// first carries load at run start, so a band that stays quiet while
    /// its peers recalibrate and then suddenly needs chasing is reacting
    /// to a workload shift, not cold-starting.
    pub new_band_grace_secs: u64,
    /// Oscillation window horizon in sim-seconds: recalibrations older
    /// than this no longer vote. Without a horizon, two self-correcting
    /// excursions hours apart would concatenate (the settled hunting
    /// between them falls below `recal_min_step`) and read as one long
    /// monotone drift.
    pub recal_max_age_secs: u64,
    /// Recalibrations per band considered by the oscillation detector.
    pub recal_window: usize,
    /// Direction flips within the window that mean thrashing.
    pub thrash_flips: usize,
    /// Recalibrations needed before drift can be claimed.
    pub drift_min_recals: usize,
    /// Net relative cross-point movement that means drift.
    pub drift_ratio: f64,
    /// A tenant below this fraction of the mean weighted usage is a
    /// starvation candidate.
    pub starvation_ratio: f64,
    /// Preemptions + rejections a starvation candidate must have suffered.
    pub starvation_min_events: u64,
    /// Cap on distinct straggler keys and burn queues tracked.
    pub max_keys: usize,
    /// Background repair bytes within `repair_window_secs` that mean a
    /// repair storm (re-replication or EC reconstruction saturating the
    /// cluster). A single-block repair stays far below this.
    pub repair_storm_bytes: f64,
    /// Sliding window for the repair-storm detector, sim-seconds.
    pub repair_window_secs: u64,
}

impl Default for DoctorConfig {
    fn default() -> Self {
        DoctorConfig {
            ring_capacity: 192,
            incident_window: 12,
            max_incidents: 64,
            straggler_min_samples: 48,
            straggler_z: 6.0,
            straggler_cooldown: 64,
            burn_budget: 0.05,
            burn_fast_secs: 300,
            burn_slow_secs: 3600,
            burn_fast_rate: 6.0,
            burn_slow_rate: 3.0,
            burn_min_jobs: 16,
            warmup_recals: 12,
            recal_min_step: 0.1,
            new_band_grace_secs: 3600,
            recal_max_age_secs: 3600,
            recal_window: 8,
            thrash_flips: 4,
            drift_min_recals: 5,
            drift_ratio: 0.6,
            starvation_ratio: 0.25,
            starvation_min_events: 4,
            max_keys: 512,
            repair_storm_bytes: 10.0e9,
            repair_window_secs: 600,
        }
    }
}

// ----------------------------------------------------------------------
// Flight recorder
// ----------------------------------------------------------------------

/// One flight-recorder entry: a compact, deterministic rendering of an
/// interesting event.
#[derive(Debug, Clone, PartialEq)]
pub struct RecEvent {
    /// Sim-seconds of the event.
    pub t_s: f64,
    /// Event category (`fault`, `scheduler`, `placement`, `tenant`).
    pub cat: String,
    /// Event name (e.g. `node_crash`, `recalibrate`, `place:scale-up`).
    pub name: String,
    /// `key=value` argument rendering, in emission order.
    pub detail: String,
}

fn render_detail(args: &[(&'static str, ArgValue)]) -> String {
    let mut out = String::new();
    for (k, v) in args {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(k);
        out.push('=');
        match v {
            ArgValue::Str(s) => out.push_str(s),
            ArgValue::U64(u) => out.push_str(&u.to_string()),
            ArgValue::F64(x) => out.push_str(&num(*x)),
            ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out
}

// ----------------------------------------------------------------------
// Robust exec-time histogram (straggler detector)
// ----------------------------------------------------------------------

/// `ln(exec)` histogram geometry: fixed log-spaced buckets from e^-2 s
/// (≈0.14 s) up, bucket width 0.125 in ln-space.
const EXEC_LN_MIN: f64 = -2.0;
const EXEC_LN_WIDTH: f64 = 0.125;
const EXEC_BUCKETS: usize = 136;

#[derive(Debug, Clone, Default, PartialEq)]
struct ExecHist {
    /// Sparse (bucket, count) pairs — most keys see a narrow exec range.
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl ExecHist {
    fn bucket(exec_s: f64) -> u32 {
        let ln = exec_s.max(1e-6).ln();
        let b = ((ln - EXEC_LN_MIN) / EXEC_LN_WIDTH).floor();
        b.clamp(0.0, (EXEC_BUCKETS - 1) as f64) as u32
    }

    fn push(&mut self, exec_s: f64) {
        *self.counts.entry(Self::bucket(exec_s)).or_insert(0) += 1;
        self.total += 1;
    }

    /// ln-space value at quantile `q` — the midpoint of the bucket holding
    /// the q-th sample.
    fn quantile_ln(&self, q: f64) -> f64 {
        let target = ((self.total as f64) * q).floor() as u64;
        let mut seen = 0u64;
        for (&b, &n) in &self.counts {
            seen += n;
            if seen > target {
                return EXEC_LN_MIN + (b as f64 + 0.5) * EXEC_LN_WIDTH;
            }
        }
        EXEC_LN_MIN
    }

    /// Modified z-score of a new sample against the recorded history:
    /// `0.6745 · (ln x − median) / MAD`, with the MAD estimated as half the
    /// interquartile range and floored at one bucket width.
    fn robust_z(&self, exec_s: f64) -> f64 {
        let median = self.quantile_ln(0.5);
        let mad = ((self.quantile_ln(0.75) - self.quantile_ln(0.25)) / 2.0).max(EXEC_LN_WIDTH);
        0.6745 * (exec_s.max(1e-6).ln() - median) / mad
    }
}

#[derive(Debug, Clone, Default, PartialEq)]
struct StragglerTrack {
    hist: ExecHist,
    /// Samples left in the post-fire mute window.
    mute: u64,
}

// ----------------------------------------------------------------------
// Burn-rate windows
// ----------------------------------------------------------------------

/// Time-bucketed SLO counters for one tenant queue: `(minute, jobs,
/// misses)`, pruned to the slow window. Burn rates are exact over the
/// bucketed stream and O(slow/60) memory.
#[derive(Debug, Clone, Default, PartialEq)]
struct BurnWindow {
    buckets: VecDeque<(u64, u64, u64)>,
    open: bool,
}

impl BurnWindow {
    fn push(&mut self, minute: u64, miss: bool, slow_minutes: u64) {
        match self.buckets.back_mut() {
            Some(b) if b.0 == minute => {
                b.1 += 1;
                b.2 += miss as u64;
            }
            _ => self.buckets.push_back((minute, 1, miss as u64)),
        }
        while self
            .buckets
            .front()
            .is_some_and(|b| b.0 + slow_minutes <= minute)
        {
            self.buckets.pop_front();
        }
    }

    /// (jobs, misses) over the trailing `minutes` window ending at `now`.
    fn tally(&self, now: u64, minutes: u64) -> (u64, u64) {
        let mut jobs = 0;
        let mut misses = 0;
        for &(m, j, x) in &self.buckets {
            if m + minutes > now {
                jobs += j;
                misses += x;
            }
        }
        (jobs, misses)
    }
}

// ----------------------------------------------------------------------
// Oscillation detector
// ----------------------------------------------------------------------

#[derive(Debug, Clone, Default, PartialEq)]
struct RecalTrack {
    /// Recalibrations seen for this band, including warm-up ones.
    seen: u64,
    /// Sim-seconds of this band's first recalibration.
    first_s: f64,
    /// True when the band arrived late (see
    /// [`DoctorConfig::new_band_grace_secs`]) and warm-up is waived.
    exempt: bool,
    /// Recent significant `(t_s, old_bytes, new_bytes)` recalibrations,
    /// oldest first.
    window: VecDeque<(f64, u64, u64)>,
    /// 0 = quiet, 1 = thrash alert open, 2 = drift alert open.
    state: u8,
}

impl RecalTrack {
    fn flips(&self) -> usize {
        let signs: Vec<i8> = self
            .window
            .iter()
            .map(|&(_, old, new)| if new >= old { 1 } else { -1 })
            .collect();
        signs.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Net relative movement from the window's first old value to its last
    /// new value.
    fn net_ratio(&self) -> f64 {
        let (Some(&(_, first_old, _)), Some(&(_, _, last_new))) =
            (self.window.front(), self.window.back())
        else {
            return 0.0;
        };
        (last_new as f64 - first_old as f64).abs() / (first_old.max(1) as f64)
    }
}

// ----------------------------------------------------------------------
// Incidents
// ----------------------------------------------------------------------

/// One diagnosed incident: what fired, where, why, and the flight-recorder
/// window around it.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Sequence number (0-based, fire order).
    pub id: u64,
    /// One of [`kinds::ALL`].
    pub kind: &'static str,
    /// Sim-seconds when the detector fired.
    pub at_s: f64,
    /// The detector key: band / size-class, queue, or tenant.
    pub key: String,
    /// One-line causal summary.
    pub summary: String,
    /// Supporting samples, in fixed per-kind order.
    pub evidence: Vec<(&'static str, String)>,
    /// Flight-recorder snapshot at fire time (oldest first).
    pub window: Vec<RecEvent>,
}

// ----------------------------------------------------------------------
// The doctor
// ----------------------------------------------------------------------

/// Sliding window of background repair plans for the repair-storm
/// detector: `(t_s, bytes)` per `re_replicate`/`reconstruct` instant.
#[derive(Debug, Clone, Default, PartialEq)]
struct RepairTrack {
    window: VecDeque<(f64, f64)>,
    open: bool,
}

impl RepairTrack {
    fn sum(&self) -> f64 {
        self.window.iter().map(|&(_, b)| b).sum()
    }
}

/// Deterministic online anomaly detector and incident diagnoser. See the
/// module docs for the detector catalogue.
#[derive(Debug, Clone)]
pub struct Doctor {
    cfg: DoctorConfig,
    events: u64,
    end: SimTime,
    ring: VecDeque<RecEvent>,
    straggler: BTreeMap<String, StragglerTrack>,
    burn: BTreeMap<String, BurnWindow>,
    recal: BTreeMap<String, RecalTrack>,
    /// Final share ledger: tenant → (weight, usage_s).
    shares: BTreeMap<u64, (f64, f64)>,
    /// Preemptions + rejections per victim tenant.
    tenant_pain: BTreeMap<u64, u64>,
    repair: RepairTrack,
    alerts: BTreeMap<&'static str, u64>,
    incidents: Vec<Incident>,
    dropped_incidents: u64,
    seq: u64,
}

impl Doctor {
    /// A doctor with the given tuning and empty state.
    pub fn new(cfg: DoctorConfig) -> Self {
        Doctor {
            cfg,
            events: 0,
            end: SimTime::ZERO,
            ring: VecDeque::new(),
            straggler: BTreeMap::new(),
            burn: BTreeMap::new(),
            recal: BTreeMap::new(),
            shares: BTreeMap::new(),
            tenant_pain: BTreeMap::new(),
            repair: RepairTrack::default(),
            alerts: BTreeMap::new(),
            incidents: Vec::new(),
            dropped_incidents: 0,
            seq: 0,
        }
    }

    /// Total alerts fired, by kind (kinds with zero fires are absent).
    pub fn alerts_total(&self) -> &BTreeMap<&'static str, u64> {
        &self.alerts
    }

    /// Alerts fired across all kinds.
    pub fn total_fired(&self) -> u64 {
        self.alerts.values().sum()
    }

    /// Retained incident reports, in fire order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Telemetry events folded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Currently open (in-flight) alerts as `(kind, key)` pairs, in
    /// deterministic key order: open burn-rate queues and bands whose
    /// oscillation state is latched.
    pub fn open_alerts(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        for (queue, w) in &self.burn {
            if w.open {
                out.push((kinds::BURN_RATE, queue.clone()));
            }
        }
        for (band, t) in &self.recal {
            match t.state {
                1 => out.push((kinds::CROSSPOINT_THRASH, band.clone())),
                2 => out.push((kinds::CROSSPOINT_DRIFT, band.clone())),
                _ => {}
            }
        }
        if self.repair.open {
            out.push((kinds::REPAIR_STORM, "storage".to_string()));
        }
        out
    }

    fn record(&mut self, ts: SimTime, cat: &str, name: &str, args: &[(&'static str, ArgValue)]) {
        if self.cfg.ring_capacity == 0 {
            return;
        }
        if self.ring.len() == self.cfg.ring_capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(RecEvent {
            t_s: ts.as_secs_f64(),
            cat: cat.to_string(),
            name: name.to_string(),
            detail: render_detail(args),
        });
    }

    fn fire(
        &mut self,
        kind: &'static str,
        at: SimTime,
        key: String,
        summary: String,
        evidence: Vec<(&'static str, String)>,
    ) {
        *self.alerts.entry(kind).or_insert(0) += 1;
        if self.incidents.len() >= self.cfg.max_incidents {
            self.dropped_incidents += 1;
            self.seq += 1;
            return;
        }
        let skip = self.ring.len().saturating_sub(self.cfg.incident_window);
        let window: Vec<RecEvent> = self.ring.iter().skip(skip).cloned().collect();
        self.incidents.push(Incident {
            id: self.seq,
            kind,
            at_s: at.as_secs_f64(),
            key,
            summary,
            evidence,
            window,
        });
        self.seq += 1;
    }

    // ------------------------------------------------------------------
    // Detectors
    // ------------------------------------------------------------------

    fn on_job(&mut self, end: SimTime, start: SimTime, args: &[(&'static str, ArgValue)]) {
        if arg_str(args, "failed").is_some() {
            return;
        }
        let exec = end.since(start).as_secs_f64();
        let band = band_of(arg_f64(args, "ratio"));
        let cluster = arg_str(args, "cluster").unwrap_or("?").to_string();
        let input = arg_u64(args, "input_bytes").unwrap_or(0);
        // Size class = log2 of the input: within one class exec times are
        // tight enough for a robust z-score to mean something.
        let class = 64 - input.max(1).leading_zeros();
        let key = format!("{band}|{cluster}|2^{class}");
        if !self.straggler.contains_key(&key) && self.straggler.len() >= self.cfg.max_keys {
            return;
        }
        let track = self.straggler.entry(key.clone()).or_default();
        let ready = track.hist.total >= self.cfg.straggler_min_samples;
        let z = if ready {
            track.hist.robust_z(exec)
        } else {
            0.0
        };
        let median_ln = track.hist.quantile_ln(0.5);
        track.hist.push(exec);
        if track.mute > 0 {
            track.mute -= 1;
            return;
        }
        if ready && z >= self.cfg.straggler_z {
            let median_s = median_ln.exp();
            self.straggler.get_mut(&key).expect("just inserted").mute = self.cfg.straggler_cooldown;
            self.fire(
                kinds::STRAGGLER,
                end,
                key.clone(),
                format!(
                    "straggler in {key}: job ran {}s against a class median of ~{}s (robust z {})",
                    num(round3(exec)),
                    num(round3(median_s)),
                    num(round3(z)),
                ),
                vec![
                    ("exec_s", num(round3(exec))),
                    ("median_s", num(round3(median_s))),
                    ("robust_z", num(round3(z))),
                    ("samples", self.straggler[&key].hist.total.to_string()),
                ],
            );
        }
    }

    fn on_tenant_complete(&mut self, ts: SimTime, args: &[(&'static str, ArgValue)]) {
        let slo_s = arg_f64(args, "slo_s").unwrap_or(0.0);
        if slo_s <= 0.0 {
            return;
        }
        let queue = arg_str(args, "queue").unwrap_or("?").to_string();
        if !self.burn.contains_key(&queue) && self.burn.len() >= self.cfg.max_keys {
            return;
        }
        let miss = arg_bool(args, "slo_miss").unwrap_or(false);
        let minute = (ts.as_secs_f64() as u64) / 60;
        let slow_minutes = (self.cfg.burn_slow_secs / 60).max(1);
        let fast_minutes = (self.cfg.burn_fast_secs / 60).max(1);
        let w = self.burn.entry(queue.clone()).or_default();
        w.push(minute, miss, slow_minutes);
        let (fast_jobs, fast_miss) = w.tally(minute, fast_minutes);
        let (slow_jobs, slow_miss) = w.tally(minute, slow_minutes);
        let rate = |jobs: u64, misses: u64| {
            if jobs >= self.cfg.burn_min_jobs {
                (misses as f64 / jobs as f64) / self.cfg.burn_budget
            } else {
                0.0
            }
        };
        let fast = rate(fast_jobs, fast_miss);
        let slow = rate(slow_jobs, slow_miss);
        if !w.open && fast >= self.cfg.burn_fast_rate && slow >= self.cfg.burn_slow_rate {
            w.open = true;
            self.fire(
                kinds::BURN_RATE,
                ts,
                queue.clone(),
                format!(
                    "queue {queue} burning error budget at {}x (fast) / {}x (slow): \
                     {fast_miss}/{fast_jobs} misses in the fast window",
                    num(round3(fast)),
                    num(round3(slow)),
                ),
                vec![
                    ("fast_burn", num(round3(fast))),
                    ("slow_burn", num(round3(slow))),
                    ("fast_jobs", fast_jobs.to_string()),
                    ("fast_misses", fast_miss.to_string()),
                    ("slow_jobs", slow_jobs.to_string()),
                    ("slow_misses", slow_miss.to_string()),
                ],
            );
        } else if w.open && fast < self.cfg.burn_fast_rate {
            self.burn.get_mut(&queue).expect("entry exists").open = false;
        }
    }

    fn on_recalibrate(&mut self, ts: SimTime, args: &[(&'static str, ArgValue)]) {
        let (Some(band), Some(old), Some(new)) = (
            arg_str(args, "band"),
            arg_u64(args, "old_bytes"),
            arg_u64(args, "new_bytes"),
        ) else {
            return;
        };
        let band = band.to_string();
        if !self.recal.contains_key(&band) && self.recal.len() >= self.cfg.max_keys {
            return;
        }
        let cap = self.cfg.recal_window.max(2);
        let earliest = self
            .recal
            .values()
            .filter(|t| t.seen > 0)
            .map(|t| t.first_s)
            .fold(f64::INFINITY, f64::min);
        let t = self.recal.entry(band.clone()).or_default();
        t.seen += 1;
        if t.seen == 1 {
            t.first_s = ts.as_secs_f64();
            t.exempt =
                earliest.is_finite() && t.first_s - earliest > self.cfg.new_band_grace_secs as f64;
        }
        if !t.exempt && t.seen <= self.cfg.warmup_recals as u64 {
            return;
        }
        let step = (new as f64 - old as f64).abs() / old.max(1) as f64;
        if step < self.cfg.recal_min_step {
            return;
        }
        let now = ts.as_secs_f64();
        let horizon = self.cfg.recal_max_age_secs as f64;
        while t
            .window
            .front()
            .is_some_and(|&(t0, _, _)| now - t0 > horizon)
        {
            t.window.pop_front();
        }
        if t.window.len() == cap {
            t.window.pop_front();
        }
        t.window.push_back((now, old, new));
        let flips = t.flips();
        let net = t.net_ratio();
        let len = t.window.len();
        let thrashing = flips >= self.cfg.thrash_flips;
        let drifting =
            len >= self.cfg.drift_min_recals && flips == 0 && net >= self.cfg.drift_ratio;
        let state = t.state;
        if thrashing && state != 1 {
            self.recal.get_mut(&band).expect("entry exists").state = 1;
            self.fire(
                kinds::CROSSPOINT_THRASH,
                ts,
                band.clone(),
                format!(
                    "cross point for {band} is thrashing: {flips} direction flips \
                     in the last {len} recalibrations"
                ),
                vec![
                    ("flips", flips.to_string()),
                    ("recals", len.to_string()),
                    ("net_ratio", num(round3(net))),
                ],
            );
        } else if drifting && state == 0 {
            self.recal.get_mut(&band).expect("entry exists").state = 2;
            self.fire(
                kinds::CROSSPOINT_DRIFT,
                ts,
                band.clone(),
                format!(
                    "cross point for {band} drifted {}% in one direction over \
                     {len} recalibrations ({} -> {} bytes)",
                    num(round3(net * 100.0)),
                    old_of(&self.recal[&band]),
                    new_of(&self.recal[&band]),
                ),
                vec![
                    ("net_ratio", num(round3(net))),
                    ("recals", len.to_string()),
                    ("flips", flips.to_string()),
                ],
            );
        } else if !thrashing && !drifting {
            self.recal.get_mut(&band).expect("entry exists").state = 0;
        }
    }

    /// Repair-storm detector: fold one background repair plan
    /// (re-replication or EC reconstruction) into the sliding window and
    /// fire when the windowed byte volume crosses the threshold. The alert
    /// latches open until the window drains below half the threshold, so
    /// one storm fires once instead of once per plan.
    fn on_repair(&mut self, ts: SimTime, bytes: f64) {
        let t = ts.as_secs_f64();
        let horizon = t - self.cfg.repair_window_secs as f64;
        self.repair.window.push_back((t, bytes));
        while self
            .repair
            .window
            .front()
            .is_some_and(|&(t0, _)| t0 < horizon)
        {
            self.repair.window.pop_front();
        }
        let sum = self.repair.sum();
        if !self.repair.open && sum >= self.cfg.repair_storm_bytes {
            self.repair.open = true;
            let plans = self.repair.window.len();
            self.fire(
                kinds::REPAIR_STORM,
                ts,
                "storage".to_string(),
                format!(
                    "{:.1} GB of background repair traffic within {} s — correlated \
                     failure recovery is saturating the repair throttle",
                    sum / 1e9,
                    self.cfg.repair_window_secs
                ),
                vec![
                    ("repair_bytes", num(round3(sum))),
                    ("window_s", self.cfg.repair_window_secs.to_string()),
                    ("plans", plans.to_string()),
                ],
            );
        } else if self.repair.open && sum < self.cfg.repair_storm_bytes / 2.0 {
            self.repair.open = false;
        }
    }

    fn on_tenant_instant(&mut self, name: &str, args: &[(&'static str, ArgValue)]) {
        match name {
            "share" => {
                if let (Some(tenant), Some(weight), Some(usage)) = (
                    arg_u64(args, "tenant"),
                    arg_f64(args, "weight"),
                    arg_f64(args, "usage_s"),
                ) {
                    if self.shares.len() < self.cfg.max_keys || self.shares.contains_key(&tenant) {
                        self.shares.insert(tenant, (weight, usage));
                    }
                }
            }
            "preempt" | "reject" => {
                if let Some(tenant) = arg_u64(args, "tenant") {
                    if self.tenant_pain.len() < self.cfg.max_keys
                        || self.tenant_pain.contains_key(&tenant)
                    {
                        *self.tenant_pain.entry(tenant).or_insert(0) += 1;
                    }
                }
            }
            _ => {}
        }
    }

    /// End-of-stream starvation check over the final share ledger.
    fn check_shares(&mut self, now: SimTime) {
        let weighted: Vec<(u64, f64)> = self
            .shares
            .iter()
            .filter(|(_, (w, _))| *w > 0.0)
            .map(|(&t, &(w, u))| (t, u / w))
            .collect();
        if weighted.len() < 2 {
            return;
        }
        let mean = weighted.iter().map(|(_, u)| u).sum::<f64>() / weighted.len() as f64;
        if mean <= 0.0 {
            return;
        }
        for (tenant, wu) in weighted {
            let pain = self.tenant_pain.get(&tenant).copied().unwrap_or(0);
            if wu < self.cfg.starvation_ratio * mean && pain >= self.cfg.starvation_min_events {
                self.fire(
                    kinds::SHARE_VIOLATION,
                    now,
                    format!("t{tenant}"),
                    format!(
                        "tenant t{tenant} starved: weighted usage {}s is {}% of the \
                         ledger mean after {pain} preemptions/rejections",
                        num(round3(wu)),
                        num(round3(wu / mean * 100.0)),
                    ),
                    vec![
                        ("weighted_usage_s", num(round3(wu))),
                        ("ledger_mean_s", num(round3(mean))),
                        ("pain_events", pain.to_string()),
                    ],
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Expositions
    // ------------------------------------------------------------------

    /// The conditional `hh_doctor_*` Prometheus section. Callers append
    /// this to an aggregator exposition only when a doctor ran, so
    /// doctor-off expositions stay byte-identical.
    pub fn render_prometheus(&self) -> String {
        let mut o = String::new();
        o.push_str(&format!(
            "# HELP {n} Alerts fired by the obs::doctor detectors.\n# TYPE {n} counter\n",
            n = names::DOCTOR_ALERTS_TOTAL
        ));
        for &kind in kinds::ALL {
            let count = self.alerts.get(kind).copied().unwrap_or(0);
            o.push_str(&format!(
                "{}{{kind=\"{kind}\"}} {count}\n",
                names::DOCTOR_ALERTS_TOTAL
            ));
        }
        o.push_str(&format!(
            "# HELP {n} Incident reports retained by the doctor.\n# TYPE {n} gauge\n{n} {}\n",
            self.incidents.len(),
            n = names::DOCTOR_INCIDENTS,
        ));
        o
    }

    /// The full incident document, schema `hybrid-hadoop-incident/v1` — a
    /// pure function of the folded event stream, byte-identical at any
    /// thread count.
    pub fn render_incidents_json(&self) -> String {
        let mut o = String::new();
        o.push_str("{\n\"schema\": \"hybrid-hadoop-incident/v1\",\n");
        o.push_str(&format!("\"{}\": {},\n", names::keys::EVENTS, self.events));
        o.push_str(&format!("\"end_s\": {},\n", num(self.end.as_secs_f64())));
        o.push_str(&format!("\"{}\": {{", names::keys::ALERTS_TOTAL));
        let mut first = true;
        for &kind in kinds::ALL {
            let count = self.alerts.get(kind).copied().unwrap_or(0);
            if !first {
                o.push_str(", ");
            }
            first = false;
            o.push_str(&format!("{}: {count}", json_string(kind)));
        }
        o.push_str("},\n");
        o.push_str(&format!("\"open_alerts\": [{}],\n", {
            let items: Vec<String> = self
                .open_alerts()
                .iter()
                .map(|(k, key)| {
                    format!(
                        "{{\"kind\": {}, \"key\": {}}}",
                        json_string(k),
                        json_string(key)
                    )
                })
                .collect();
            items.join(", ")
        }));
        o.push_str(&format!(
            "\"dropped_incidents\": {},\n",
            self.dropped_incidents
        ));
        o.push_str(&format!("\"{}\": [\n", names::keys::INCIDENTS));
        for (i, inc) in self.incidents.iter().enumerate() {
            o.push_str(&incident_json(inc));
            if i + 1 < self.incidents.len() {
                o.push(',');
            }
            o.push('\n');
        }
        o.push_str("]\n}\n");
        o
    }

    // ------------------------------------------------------------------
    // Snapshot / restore (schema `hybrid-hadoop-doctor/v1`)
    // ------------------------------------------------------------------

    /// Serialize the complete doctor state — detector windows, open alerts,
    /// flight recorder, and retained incidents — so a restarted session
    /// continues bitwise where this one stopped.
    pub fn snapshot_json(&self) -> String {
        let c = &self.cfg;
        let mut o = String::new();
        o.push_str("{\"schema\":\"hybrid-hadoop-doctor/v1\",");
        o.push_str(&format!(
            "\"config\":{{\"ring_capacity\":{},\"incident_window\":{},\"max_incidents\":{},\
             \"straggler_min_samples\":{},\"straggler_z\":{},\"straggler_cooldown\":{},\
             \"burn_budget\":{},\"burn_fast_secs\":{},\"burn_slow_secs\":{},\
             \"burn_fast_rate\":{},\"burn_slow_rate\":{},\"burn_min_jobs\":{},\
             \"warmup_recals\":{},\"recal_min_step\":{},\"new_band_grace_secs\":{},\
             \"recal_max_age_secs\":{},\"recal_window\":{},\"thrash_flips\":{},\"drift_min_recals\":{},\
             \"drift_ratio\":{},\"starvation_ratio\":{},\"starvation_min_events\":{},\
             \"max_keys\":{},\"repair_storm_bytes\":{},\"repair_window_secs\":{}}},",
            c.ring_capacity,
            c.incident_window,
            c.max_incidents,
            c.straggler_min_samples,
            num(c.straggler_z),
            c.straggler_cooldown,
            num(c.burn_budget),
            c.burn_fast_secs,
            c.burn_slow_secs,
            num(c.burn_fast_rate),
            num(c.burn_slow_rate),
            c.burn_min_jobs,
            c.warmup_recals,
            num(c.recal_min_step),
            c.new_band_grace_secs,
            c.recal_max_age_secs,
            c.recal_window,
            c.thrash_flips,
            c.drift_min_recals,
            num(c.drift_ratio),
            num(c.starvation_ratio),
            c.starvation_min_events,
            c.max_keys,
            num(c.repair_storm_bytes),
            c.repair_window_secs,
        ));
        o.push_str(&format!(
            "\"events\":{},\"end_s\":{},\"seq\":{},\"dropped\":{},",
            self.events,
            num(self.end.as_secs_f64()),
            self.seq,
            self.dropped_incidents
        ));
        o.push_str("\"alerts\":{");
        push_join(&mut o, self.alerts.iter(), |(k, n)| {
            format!("{}:{n}", json_string(k))
        });
        o.push_str("},\"straggler\":{");
        push_join(&mut o, self.straggler.iter(), |(key, t)| {
            let buckets: Vec<String> = t
                .hist
                .counts
                .iter()
                .map(|(b, n)| format!("[{b},{n}]"))
                .collect();
            format!(
                "{}:{{\"mute\":{},\"total\":{},\"counts\":[{}]}}",
                json_string(key),
                t.mute,
                t.hist.total,
                buckets.join(",")
            )
        });
        o.push_str("},\"burn\":{");
        push_join(&mut o, self.burn.iter(), |(q, w)| {
            let buckets: Vec<String> = w
                .buckets
                .iter()
                .map(|(m, j, x)| format!("[{m},{j},{x}]"))
                .collect();
            format!(
                "{}:{{\"open\":{},\"buckets\":[{}]}}",
                json_string(q),
                w.open,
                buckets.join(",")
            )
        });
        o.push_str("},\"recal\":{");
        push_join(&mut o, self.recal.iter(), |(band, t)| {
            let w: Vec<String> = t
                .window
                .iter()
                .map(|(ts, a, b)| format!("[{},{a},{b}]", num(*ts)))
                .collect();
            format!(
                "{}:{{\"seen\":{},\"first_s\":{},\"exempt\":{},\"state\":{},\"window\":[{}]}}",
                json_string(band),
                t.seen,
                num(t.first_s),
                t.exempt,
                t.state,
                w.join(",")
            )
        });
        o.push_str("},\"shares\":[");
        push_join(&mut o, self.shares.iter(), |(t, (w, u))| {
            format!("[{t},{},{}]", num(*w), num(*u))
        });
        o.push_str("],\"pain\":[");
        push_join(&mut o, self.tenant_pain.iter(), |(t, n)| {
            format!("[{t},{n}]")
        });
        o.push_str("],\"repair\":{\"open\":");
        o.push_str(if self.repair.open { "true" } else { "false" });
        o.push_str(",\"window\":[");
        push_join(&mut o, self.repair.window.iter(), |(t, b)| {
            format!("[{},{}]", num(*t), num(*b))
        });
        o.push_str("]},\"ring\":[");
        push_join(&mut o, self.ring.iter(), rec_event_json);
        o.push_str("],\"incidents\":[");
        push_join(&mut o, self.incidents.iter(), incident_json);
        o.push_str("]}");
        o
    }

    /// Rebuild a doctor from [`Doctor::snapshot_json`] output. Errors on
    /// schema mismatch or malformed documents.
    pub fn restore(doc: &str) -> Result<Doctor, String> {
        restore::doctor(doc)
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn old_of(t: &RecalTrack) -> u64 {
    t.window.front().map(|&(_, o, _)| o).unwrap_or(0)
}

fn new_of(t: &RecalTrack) -> u64 {
    t.window.back().map(|&(_, _, n)| n).unwrap_or(0)
}

fn push_join<I, T, F>(o: &mut String, items: I, f: F)
where
    I: Iterator<Item = T>,
    F: Fn(T) -> String,
{
    let rendered: Vec<String> = items.map(f).collect();
    o.push_str(&rendered.join(","));
}

fn rec_event_json(e: &RecEvent) -> String {
    format!(
        "{{\"t_s\": {}, \"cat\": {}, \"name\": {}, \"detail\": {}}}",
        num(e.t_s),
        json_string(&e.cat),
        json_string(&e.name),
        json_string(&e.detail)
    )
}

fn incident_json(inc: &Incident) -> String {
    let evidence: Vec<String> = inc
        .evidence
        .iter()
        .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
        .collect();
    let window: Vec<String> = inc.window.iter().map(rec_event_json).collect();
    format!(
        "{{\"id\": {}, \"kind\": {}, \"at_s\": {}, \"key\": {}, \"summary\": {}, \
         \"evidence\": {{{}}}, \"window\": [{}]}}",
        inc.id,
        json_string(inc.kind),
        num(inc.at_s),
        json_string(&inc.key),
        json_string(&inc.summary),
        evidence.join(", "),
        window.join(", ")
    )
}

impl TelemetrySink for Doctor {
    fn span(
        &mut self,
        cat: &'static str,
        _name: &str,
        _pid: u32,
        _tid: u32,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, ArgValue)],
    ) {
        self.events += 1;
        self.end = self.end.max(end);
        if cat == "job" {
            self.on_job(end, start, args);
        }
    }

    fn instant(
        &mut self,
        cat: &'static str,
        name: &str,
        _pid: u32,
        _tid: u32,
        ts: SimTime,
        args: &[(&'static str, ArgValue)],
    ) {
        self.events += 1;
        self.end = self.end.max(ts);
        match cat {
            "fault" | "placement" => {
                self.record(ts, cat, name, args);
                if cat == "fault" && matches!(name, "re_replicate" | "reconstruct") {
                    self.on_repair(ts, arg_f64(args, "bytes").unwrap_or(0.0));
                }
            }
            "scheduler" => {
                self.record(ts, cat, name, args);
                if name == "recalibrate" {
                    self.on_recalibrate(ts, args);
                }
            }
            "tenant" => {
                if name == "complete" {
                    self.on_tenant_complete(ts, args);
                } else {
                    self.record(ts, cat, name, args);
                    self.on_tenant_instant(name, args);
                }
            }
            _ => {}
        }
    }

    fn counter(
        &mut self,
        _cat: &'static str,
        _name: &'static str,
        _pid: u32,
        ts: SimTime,
        _v: f64,
    ) {
        self.events += 1;
        self.end = self.end.max(ts);
    }

    fn name_process(&mut self, _pid: u32, _name: &str) {
        self.events += 1;
    }

    fn finish(&mut self, now: SimTime) {
        self.end = self.end.max(now);
        self.check_shares(self.end);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

// ----------------------------------------------------------------------
// Restore: a minimal recursive-descent JSON reader (std-only, same spirit
// as the scheduler snapshot cursor — documents are produced by us).
// ----------------------------------------------------------------------

mod restore {
    use super::*;

    enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        fn f64_of(&self, key: &str) -> Result<f64, String> {
            match self.get(key) {
                Some(Json::Num(x)) => Ok(*x),
                _ => Err(format!("missing number field {key:?}")),
            }
        }

        fn u64_of(&self, key: &str) -> Result<u64, String> {
            let x = self.f64_of(key)?;
            if x.is_finite() && x >= 0.0 && x.fract() == 0.0 {
                Ok(x as u64)
            } else {
                Err(format!("field {key:?} is not a u64"))
            }
        }

        fn str_of(&self, key: &str) -> Result<&str, String> {
            match self.get(key) {
                Some(Json::Str(s)) => Ok(s),
                _ => Err(format!("missing string field {key:?}")),
            }
        }

        fn bool_of(&self, key: &str) -> Result<bool, String> {
            match self.get(key) {
                Some(Json::Bool(b)) => Ok(*b),
                _ => Err(format!("missing bool field {key:?}")),
            }
        }

        fn arr_of(&self, key: &str) -> Result<&[Json], String> {
            match self.get(key) {
                Some(Json::Arr(items)) => Ok(items),
                _ => Err(format!("missing array field {key:?}")),
            }
        }

        fn obj_of(&self, key: &str) -> Result<&[(String, Json)], String> {
            match self.get(key) {
                Some(Json::Obj(fields)) => Ok(fields),
                _ => Err(format!("missing object field {key:?}")),
            }
        }

        fn as_num(&self) -> Result<f64, String> {
            match self {
                Json::Num(x) => Ok(*x),
                _ => Err("expected a number".into()),
            }
        }

        fn as_u64(&self) -> Result<u64, String> {
            let x = self.as_num()?;
            if x.is_finite() && x >= 0.0 && x.fract() == 0.0 {
                Ok(x as u64)
            } else {
                Err("expected a u64".into())
            }
        }
    }

    struct Parser<'a> {
        s: &'a [u8],
        i: usize,
    }

    impl<'a> Parser<'a> {
        fn ws(&mut self) {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.ws();
            self.s.get(self.i).copied()
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", c as char, self.i))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.peek().ok_or("unexpected end of input")? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Json::Str(self.string()?)),
                b't' => self.literal("true", Json::Bool(true)),
                b'f' => self.literal("false", Json::Bool(false)),
                b'n' => self.literal("null", Json::Null),
                _ => self.number(),
            }
        }

        fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
            if self.s[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                fields.push((key, self.value()?));
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.i;
            let mut out = String::new();
            while let Some(&c) = self.s.get(self.i) {
                self.i += 1;
                match c {
                    b'"' => {
                        return Ok(out);
                    }
                    b'\\' => {
                        let esc = *self.s.get(self.i).ok_or("unterminated escape")?;
                        self.i += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex = self
                                    .s
                                    .get(self.i..self.i + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("bad \\u escape")?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                self.i += 4;
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            }
                            _ => return Err(format!("bad escape at byte {}", self.i)),
                        }
                    }
                    c if c < 0x80 => out.push(c as char),
                    _ => {
                        // Multi-byte UTF-8: copy the raw byte run verbatim.
                        let mut end = self.i;
                        while self.s.get(end).is_some_and(|&b| b >= 0x80) {
                            end += 1;
                        }
                        let run = std::str::from_utf8(&self.s[self.i - 1..end])
                            .map_err(|_| format!("bad utf-8 at byte {start}"))?;
                        out.push_str(run);
                        self.i = end;
                    }
                }
            }
            Err("unterminated string".into())
        }

        fn number(&mut self) -> Result<Json, String> {
            self.ws();
            let start = self.i;
            while self
                .s
                .get(self.i)
                .is_some_and(|&c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                self.i += 1;
            }
            std::str::from_utf8(&self.s[start..self.i])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }

    fn parse(doc: &str) -> Result<Json, String> {
        let mut p = Parser {
            s: doc.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.s.len() {
            return Err(format!("trailing bytes at {}", p.i));
        }
        Ok(v)
    }

    fn kind_of(s: &str) -> Result<&'static str, String> {
        kinds::ALL
            .iter()
            .copied()
            .find(|k| *k == s)
            .ok_or_else(|| format!("unknown alert kind {s:?}"))
    }

    fn rec_event(v: &Json) -> Result<RecEvent, String> {
        Ok(RecEvent {
            t_s: v.f64_of("t_s")?,
            cat: v.str_of("cat")?.to_string(),
            name: v.str_of("name")?.to_string(),
            detail: v.str_of("detail")?.to_string(),
        })
    }

    fn incident(v: &Json) -> Result<Incident, String> {
        let mut evidence = Vec::new();
        for (k, val) in v.obj_of("evidence")? {
            let Json::Str(s) = val else {
                return Err("evidence values must be strings".into());
            };
            // Evidence keys are emitted from 'static tables; intern them
            // against the known set, falling back through a leak-free match.
            evidence.push((intern_evidence(k)?, s.clone()));
        }
        let mut window = Vec::new();
        for e in v.arr_of("window")? {
            window.push(rec_event(e)?);
        }
        Ok(Incident {
            id: v.u64_of("id")?,
            kind: kind_of(v.str_of("kind")?)?,
            at_s: v.f64_of("at_s")?,
            key: v.str_of("key")?.to_string(),
            summary: v.str_of("summary")?.to_string(),
            evidence,
            window,
        })
    }

    /// Evidence keys are a closed set (each detector emits a fixed list);
    /// restoring maps them back to the `'static` originals.
    fn intern_evidence(k: &str) -> Result<&'static str, String> {
        const KEYS: &[&str] = &[
            "exec_s",
            "median_s",
            "robust_z",
            "samples",
            "fast_burn",
            "slow_burn",
            "fast_jobs",
            "fast_misses",
            "slow_jobs",
            "slow_misses",
            "flips",
            "recals",
            "net_ratio",
            "weighted_usage_s",
            "ledger_mean_s",
            "pain_events",
            "repair_bytes",
            "window_s",
            "plans",
        ];
        KEYS.iter()
            .copied()
            .find(|x| *x == k)
            .ok_or_else(|| format!("unknown evidence key {k:?}"))
    }

    pub(super) fn doctor(doc: &str) -> Result<Doctor, String> {
        let v = parse(doc)?;
        let schema = v.str_of("schema")?;
        if schema != "hybrid-hadoop-doctor/v1" {
            return Err(format!("unsupported schema {schema:?}"));
        }
        let c = v
            .get("config")
            .ok_or_else(|| "missing config".to_string())?;
        let cfg = DoctorConfig {
            ring_capacity: c.u64_of("ring_capacity")? as usize,
            incident_window: c.u64_of("incident_window")? as usize,
            max_incidents: c.u64_of("max_incidents")? as usize,
            straggler_min_samples: c.u64_of("straggler_min_samples")?,
            straggler_z: c.f64_of("straggler_z")?,
            straggler_cooldown: c.u64_of("straggler_cooldown")?,
            burn_budget: c.f64_of("burn_budget")?,
            burn_fast_secs: c.u64_of("burn_fast_secs")?,
            burn_slow_secs: c.u64_of("burn_slow_secs")?,
            burn_fast_rate: c.f64_of("burn_fast_rate")?,
            burn_slow_rate: c.f64_of("burn_slow_rate")?,
            burn_min_jobs: c.u64_of("burn_min_jobs")?,
            warmup_recals: c.u64_of("warmup_recals")? as usize,
            recal_min_step: c.f64_of("recal_min_step")?,
            new_band_grace_secs: c.u64_of("new_band_grace_secs")?,
            recal_max_age_secs: c.u64_of("recal_max_age_secs")?,
            recal_window: c.u64_of("recal_window")? as usize,
            thrash_flips: c.u64_of("thrash_flips")? as usize,
            drift_min_recals: c.u64_of("drift_min_recals")? as usize,
            drift_ratio: c.f64_of("drift_ratio")?,
            starvation_ratio: c.f64_of("starvation_ratio")?,
            starvation_min_events: c.u64_of("starvation_min_events")?,
            max_keys: c.u64_of("max_keys")? as usize,
            repair_storm_bytes: c.f64_of("repair_storm_bytes")?,
            repair_window_secs: c.u64_of("repair_window_secs")?,
        };
        let mut d = Doctor::new(cfg);
        d.events = v.u64_of("events")?;
        d.end = SimTime::from_secs_f64(v.f64_of("end_s")?);
        d.seq = v.u64_of("seq")?;
        d.dropped_incidents = v.u64_of("dropped")?;
        for (k, n) in v.obj_of("alerts")? {
            d.alerts.insert(kind_of(k)?, n.as_u64()?);
        }
        for (key, t) in v.obj_of("straggler")? {
            let mut track = StragglerTrack {
                mute: t.u64_of("mute")?,
                ..Default::default()
            };
            track.hist.total = t.u64_of("total")?;
            for pair in t.arr_of("counts")? {
                let Json::Arr(items) = pair else {
                    return Err("straggler counts must be [bucket, n] pairs".into());
                };
                if items.len() != 2 {
                    return Err("straggler counts must be [bucket, n] pairs".into());
                }
                track
                    .counts_mut()
                    .insert(items[0].as_u64()? as u32, items[1].as_u64()?);
            }
            d.straggler.insert(key.clone(), track);
        }
        for (q, w) in v.obj_of("burn")? {
            let mut window = BurnWindow {
                open: w.bool_of("open")?,
                ..Default::default()
            };
            for b in w.arr_of("buckets")? {
                let Json::Arr(items) = b else {
                    return Err("burn buckets must be [minute, jobs, misses]".into());
                };
                if items.len() != 3 {
                    return Err("burn buckets must be [minute, jobs, misses]".into());
                }
                window.buckets.push_back((
                    items[0].as_u64()?,
                    items[1].as_u64()?,
                    items[2].as_u64()?,
                ));
            }
            d.burn.insert(q.clone(), window);
        }
        for (band, t) in v.obj_of("recal")? {
            let mut track = RecalTrack {
                seen: t.u64_of("seen")?,
                first_s: t.f64_of("first_s")?,
                exempt: t.bool_of("exempt")?,
                state: t.u64_of("state")? as u8,
                ..Default::default()
            };
            for pair in t.arr_of("window")? {
                let Json::Arr(items) = pair else {
                    return Err("recal window must be [t, old, new] triples".into());
                };
                if items.len() != 3 {
                    return Err("recal window must be [t, old, new] triples".into());
                }
                track.window.push_back((
                    items[0].as_num()?,
                    items[1].as_u64()?,
                    items[2].as_u64()?,
                ));
            }
            d.recal.insert(band.clone(), track);
        }
        for s in v.arr_of("shares")? {
            let Json::Arr(items) = s else {
                return Err("shares must be [tenant, weight, usage] triples".into());
            };
            if items.len() != 3 {
                return Err("shares must be [tenant, weight, usage] triples".into());
            }
            d.shares
                .insert(items[0].as_u64()?, (items[1].as_num()?, items[2].as_num()?));
        }
        for p in v.arr_of("pain")? {
            let Json::Arr(items) = p else {
                return Err("pain must be [tenant, n] pairs".into());
            };
            if items.len() != 2 {
                return Err("pain must be [tenant, n] pairs".into());
            }
            d.tenant_pain.insert(items[0].as_u64()?, items[1].as_u64()?);
        }
        let rep = v
            .get("repair")
            .ok_or_else(|| "missing repair".to_string())?;
        d.repair.open = rep.bool_of("open")?;
        for pair in rep.arr_of("window")? {
            let Json::Arr(items) = pair else {
                return Err("repair window must be [t, bytes] pairs".into());
            };
            if items.len() != 2 {
                return Err("repair window must be [t, bytes] pairs".into());
            }
            d.repair
                .window
                .push_back((items[0].as_num()?, items[1].as_num()?));
        }
        for e in v.arr_of("ring")? {
            d.ring.push_back(rec_event(e)?);
        }
        for i in v.arr_of("incidents")? {
            d.incidents.push(incident(i)?);
        }
        Ok(d)
    }
}

impl StragglerTrack {
    fn counts_mut(&mut self) -> &mut BTreeMap<u32, u64> {
        &mut self.hist.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_span(d: &mut Doctor, id: u32, t0: u64, exec_s: f64, ratio: f64, input: u64) {
        let start = SimTime::from_secs(t0);
        let end = SimTime::from_secs_f64(t0 as f64 + exec_s);
        d.span(
            "job",
            "t#0",
            crate::lanes::JOBS,
            id,
            start,
            end,
            &[
                ("app", ArgValue::from("test")),
                ("cluster", ArgValue::from("scale-up")),
                ("input_bytes", ArgValue::from(input)),
                ("ratio", ArgValue::from(ratio)),
            ],
        );
    }

    fn tenant_complete(d: &mut Doctor, t: u64, queue: &str, slo_s: f64, miss: bool) {
        d.instant(
            "tenant",
            "complete",
            crate::lanes::JOBS,
            0,
            SimTime::from_secs(t),
            &[
                ("tenant", ArgValue::from(1u64)),
                ("queue", ArgValue::from(queue)),
                (
                    "sojourn_s",
                    ArgValue::from(if miss { slo_s * 2.0 } else { 1.0 }),
                ),
                ("slo_s", ArgValue::from(slo_s)),
                ("slo_miss", ArgValue::from(miss)),
            ],
        );
    }

    fn recal(d: &mut Doctor, t: u64, old: u64, new: u64) {
        d.instant(
            "scheduler",
            "recalibrate",
            crate::lanes::JOBS,
            0,
            SimTime::from_secs(t),
            &[
                ("band", ArgValue::from("S/I>1")),
                ("old_bytes", ArgValue::from(old)),
                ("new_bytes", ArgValue::from(new)),
            ],
        );
    }

    #[test]
    fn straggler_fires_on_outlier_and_mutes() {
        let mut d = Doctor::new(DoctorConfig {
            straggler_min_samples: 32,
            ..Default::default()
        });
        for i in 0..64 {
            job_span(&mut d, i, i as u64, 10.0, 1.5, 1 << 30);
        }
        assert_eq!(d.total_fired(), 0, "uniform execs never fire");
        job_span(&mut d, 100, 100, 400.0, 1.5, 1 << 30);
        assert_eq!(d.alerts_total().get(kinds::STRAGGLER), Some(&1));
        // A second outlier inside the cooldown is muted.
        job_span(&mut d, 101, 101, 400.0, 1.5, 1 << 30);
        assert_eq!(d.alerts_total().get(kinds::STRAGGLER), Some(&1));
        let inc = &d.incidents()[0];
        assert_eq!(inc.kind, kinds::STRAGGLER);
        assert!(
            inc.key.contains("S/I>1"),
            "key carries the band: {}",
            inc.key
        );
        assert!(inc.summary.contains("straggler"));
    }

    #[test]
    fn burn_rate_needs_both_windows_and_closes_on_recovery() {
        let mut d = Doctor::new(DoctorConfig {
            burn_min_jobs: 4,
            ..Default::default()
        });
        // 20 misses packed into the fast window: both windows hot -> one
        // open transition.
        for i in 0..20 {
            tenant_complete(&mut d, 10 + i, "batch", 5.0, true);
        }
        assert_eq!(d.alerts_total().get(kinds::BURN_RATE), Some(&1));
        assert_eq!(
            d.open_alerts(),
            vec![(kinds::BURN_RATE, "batch".to_string())]
        );
        // A healthy stretch clears the fast window: the alert closes
        // without re-firing.
        for i in 0..60 {
            tenant_complete(&mut d, 1000 + i * 10, "batch", 5.0, false);
        }
        assert_eq!(d.alerts_total().get(kinds::BURN_RATE), Some(&1));
        assert!(d.open_alerts().is_empty());
    }

    #[test]
    fn oscillation_separates_thrash_from_drift() {
        let base = 10_u64 << 30;
        let armed = DoctorConfig {
            warmup_recals: 0,
            ..Default::default()
        };
        // Monotone march: drift, no thrash.
        let mut d = Doctor::new(armed.clone());
        let mut x = base;
        for i in 0..8 {
            let next = x + (3 << 30);
            recal(&mut d, 100 * i, x, next);
            x = next;
        }
        assert_eq!(d.alerts_total().get(kinds::CROSSPOINT_DRIFT), Some(&1));
        assert_eq!(d.alerts_total().get(kinds::CROSSPOINT_THRASH), None);

        // Alternating direction: thrash, no drift.
        let mut d = Doctor::new(armed);
        for i in 0..8 {
            let (old, new) = if i % 2 == 0 {
                (base, base + (4 << 30))
            } else {
                (base + (4 << 30), base)
            };
            recal(&mut d, 100 * i, old, new);
        }
        assert_eq!(d.alerts_total().get(kinds::CROSSPOINT_THRASH), Some(&1));
        assert_eq!(d.alerts_total().get(kinds::CROSSPOINT_DRIFT), None);
    }

    #[test]
    fn oscillation_warmup_swallows_convergence_transient() {
        // An estimator converging from its default prior marches the
        // threshold monotonically — exactly a drift signature — but the
        // first `warmup_recals` recalibrations are burn-in, not an anomaly.
        let mut d = Doctor::new(DoctorConfig {
            warmup_recals: 8,
            ..Default::default()
        });
        let mut x = 32_u64 << 30;
        for i in 0..8 {
            let next = x - x / 4;
            recal(&mut d, 100 * i, x, next);
            x = next;
        }
        assert_eq!(d.total_fired(), 0, "convergence inside warm-up is quiet");
        // Post-warm-up, the same monotone march is real drift.
        for i in 8..16 {
            let next = x - x / 4;
            recal(&mut d, 100 * i, x, next);
            x = next;
        }
        assert_eq!(d.alerts_total().get(kinds::CROSSPOINT_DRIFT), Some(&1));
    }

    #[test]
    fn repair_storm_fires_once_per_storm_and_rearms_after_drain() {
        let mut d = Doctor::new(DoctorConfig {
            repair_storm_bytes: 1.0e9,
            repair_window_secs: 100,
            ..Default::default()
        });
        let repair = |d: &mut Doctor, t: u64, name: &str, bytes: f64| {
            d.instant(
                "fault",
                name,
                crate::lanes::STORAGE,
                0,
                SimTime::from_secs(t),
                &[("bytes", bytes.into())],
            );
        };
        // Scattered single-block repairs stay below the threshold.
        repair(&mut d, 10, "re_replicate", 3.0e8);
        repair(&mut d, 20, "reconstruct", 3.0e8);
        assert_eq!(d.alerts_total().get(kinds::REPAIR_STORM), None);
        // The storm crosses the threshold: exactly one alert, latched open.
        repair(&mut d, 30, "re_replicate", 5.0e8);
        repair(&mut d, 31, "re_replicate", 5.0e8);
        repair(&mut d, 32, "reconstruct", 5.0e8);
        assert_eq!(d.alerts_total().get(kinds::REPAIR_STORM), Some(&1));
        assert!(d
            .open_alerts()
            .contains(&(kinds::REPAIR_STORM, "storage".to_string())));
        let inc = d
            .incidents()
            .iter()
            .find(|i| i.kind == kinds::REPAIR_STORM)
            .expect("incident retained");
        assert!(inc.evidence.iter().any(|(k, _)| *k == "repair_bytes"));
        // After the window drains the detector closes and re-arms.
        repair(&mut d, 500, "re_replicate", 1.0e8);
        assert!(!d
            .open_alerts()
            .contains(&(kinds::REPAIR_STORM, "storage".to_string())));
        repair(&mut d, 510, "reconstruct", 1.1e9);
        assert_eq!(d.alerts_total().get(kinds::REPAIR_STORM), Some(&2));
        // The whole thing round-trips through snapshot/restore.
        let restored = Doctor::restore(&d.snapshot_json()).expect("restores");
        assert_eq!(restored.snapshot_json(), d.snapshot_json());
        assert_eq!(restored.open_alerts(), d.open_alerts());
    }

    #[test]
    fn share_violation_requires_starvation_and_pain() {
        let mut d = Doctor::new(DoctorConfig::default());
        let share = |d: &mut Doctor, tenant: u64, usage: f64| {
            d.instant(
                "tenant",
                "share",
                crate::lanes::JOBS,
                0,
                SimTime::from_secs(500),
                &[
                    ("tenant", ArgValue::from(tenant)),
                    ("weight", ArgValue::from(1.0)),
                    ("usage_s", ArgValue::from(usage)),
                ],
            );
        };
        share(&mut d, 1, 100.0);
        share(&mut d, 2, 100.0);
        share(&mut d, 3, 2.0);
        for _ in 0..5 {
            d.instant(
                "tenant",
                "preempt",
                crate::lanes::JOBS,
                0,
                SimTime::from_secs(400),
                &[
                    ("tenant", ArgValue::from(3u64)),
                    ("wasted_s", ArgValue::from(4.0)),
                ],
            );
        }
        d.finish(SimTime::from_secs(600));
        assert_eq!(d.alerts_total().get(kinds::SHARE_VIOLATION), Some(&1));
        let inc = d.incidents().last().unwrap();
        assert_eq!(inc.key, "t3");

        // Same shares, no preemptions: low usage alone is demand, not
        // starvation.
        let mut d = Doctor::new(DoctorConfig::default());
        share(&mut d, 1, 100.0);
        share(&mut d, 2, 100.0);
        share(&mut d, 3, 2.0);
        d.finish(SimTime::from_secs(600));
        assert_eq!(d.total_fired(), 0);
    }

    #[test]
    fn flight_recorder_is_bounded_and_windows_incidents() {
        let mut d = Doctor::new(DoctorConfig {
            ring_capacity: 8,
            incident_window: 4,
            straggler_min_samples: 16,
            ..Default::default()
        });
        for i in 0..100u64 {
            d.instant(
                "fault",
                "node_crash",
                crate::lanes::JOBS,
                0,
                SimTime::from_secs(i),
                &[("node", ArgValue::from(i))],
            );
        }
        assert_eq!(d.ring.len(), 8);
        for i in 0..40 {
            job_span(&mut d, i, 200 + i as u64, 10.0, 1.5, 1 << 30);
        }
        job_span(&mut d, 999, 400, 500.0, 1.5, 1 << 30);
        let inc = d.incidents().last().expect("straggler fired");
        assert_eq!(inc.window.len(), 4);
        assert!(inc.window.iter().all(|e| e.cat == "fault"));
        assert!(inc.window[0].detail.starts_with("node="));
    }

    #[test]
    fn incident_json_is_schema_versioned_and_deterministic() {
        let mut d = Doctor::new(DoctorConfig::default());
        for i in 0..60 {
            job_span(&mut d, i, i as u64, 10.0, 1.5, 1 << 30);
        }
        job_span(&mut d, 100, 100, 500.0, 1.5, 1 << 30);
        d.finish(SimTime::from_secs(700));
        let doc = d.render_incidents_json();
        assert!(doc.contains("\"schema\": \"hybrid-hadoop-incident/v1\""));
        assert!(doc.contains("\"straggler\": 1"));
        let again = d.render_incidents_json();
        assert_eq!(doc, again);
    }

    #[test]
    fn prometheus_section_lists_every_kind() {
        let d = Doctor::new(DoctorConfig::default());
        let prom = d.render_prometheus();
        for kind in kinds::ALL {
            assert!(prom.contains(&format!("kind=\"{kind}\"")), "missing {kind}");
        }
        assert!(prom.contains(names::DOCTOR_ALERTS_TOTAL));
        assert!(prom.contains(names::DOCTOR_INCIDENTS));
    }

    /// Full-state snapshot equivalence: cut a mixed event stream at every
    /// 16th event, round-trip the doctor through JSON at the cut, and the
    /// continued session must match the uninterrupted one — alerts,
    /// incidents, open state, and the next snapshot, byte for byte.
    #[test]
    fn snapshot_restore_roundtrip_preserves_all_state() {
        let feed = |d: &mut Doctor, i: u64| {
            match i % 5 {
                0 => job_span(d, i as u32, i, 10.0 + (i % 3) as f64, 1.5, 1 << 30),
                1 => job_span(
                    d,
                    i as u32,
                    i,
                    if i == 71 { 900.0 } else { 12.0 },
                    0.2,
                    1 << 34,
                ),
                2 => tenant_complete(d, i, "batch", 5.0, i.is_multiple_of(2)),
                3 => recal(
                    d,
                    i,
                    (10 << 30) + (i % 7) * (1 << 28),
                    (10 << 30) + ((i + 3) % 7) * (1 << 28),
                ),
                _ => d.instant(
                    "fault",
                    "node_crash",
                    crate::lanes::JOBS,
                    0,
                    SimTime::from_secs(i),
                    &[("node", ArgValue::from(i % 14))],
                ),
            };
        };
        let mut base = Doctor::new(DoctorConfig {
            burn_min_jobs: 4,
            straggler_min_samples: 8,
            ..Default::default()
        });
        for i in 0..300 {
            feed(&mut base, i);
        }
        base.finish(SimTime::from_secs(301));
        let base_doc = base.snapshot_json();
        let base_report = base.render_incidents_json();

        let mut riddled = Doctor::new(DoctorConfig {
            burn_min_jobs: 4,
            straggler_min_samples: 8,
            ..Default::default()
        });
        for i in 0..300 {
            feed(&mut riddled, i);
            if (i + 1) % 16 == 0 {
                riddled = Doctor::restore(&riddled.snapshot_json())
                    .expect("a saved doctor snapshot always restores");
            }
        }
        riddled.finish(SimTime::from_secs(301));
        assert_eq!(riddled.snapshot_json(), base_doc);
        assert_eq!(riddled.render_incidents_json(), base_report);
        assert_eq!(riddled.alerts_total(), base.alerts_total());
        assert_eq!(riddled.open_alerts(), base.open_alerts());

        // save -> restore -> save is byte-stable.
        let restored = Doctor::restore(&base_doc).expect("restores");
        assert_eq!(restored.snapshot_json(), base_doc);
    }

    #[test]
    fn restore_rejects_bad_documents() {
        assert!(Doctor::restore("{}").is_err());
        assert!(Doctor::restore("not json").is_err());
        let doc = Doctor::new(DoctorConfig::default())
            .snapshot_json()
            .replace("hybrid-hadoop-doctor/v1", "hybrid-hadoop-doctor/v0");
        assert!(Doctor::restore(&doc).is_err());
    }
}
