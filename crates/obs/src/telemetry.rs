//! Bounded-memory online aggregation of the instrumentation stream.
//!
//! The [`Recorder`](crate::Recorder) buffers every event, which is exactly
//! right for a 6-job Chrome trace and exactly wrong for a million-job
//! replay. [`OnlineAggregator`] is the streaming alternative: it implements
//! [`TelemetrySink`] and folds every span, instant,
//! and counter into fixed-size aggregates the moment it is emitted —
//! following the always-on-profiling playbook (Google-Wide Profiling,
//! Monarch): aggregate at ingest, bound memory by construction, degrade
//! resolution rather than grow.
//!
//! ## What is maintained, and in how much memory
//!
//! - **Slot-utilization timelines** — one [`TimeBuckets`] per
//!   `(cluster, map|reduce)` track, integrating the engine's running-task
//!   counters over simulated time. O(clusters × 2 × `timeline_buckets`).
//! - **Job-latency histograms** — one [`LogHistogram`] per
//!   `(shuffle-ratio band, routed side)`, with p50/p95/p99 read out at
//!   exposition. O(bands × sides × `latency_buckets`).
//! - **Fault / speculation / re-replication counters** — O(fault kinds).
//! - **Scheduler decision audit** — routing tallies per `(band, side)` and
//!   rejected-alternative tallies per `(band, reason)`, the reason being the
//!   prefix of the scheduler's `PlacementDecision::explain` note. Reason
//!   cardinality is
//!   capped at `max_reason_tags`; overflow collapses into `"(other)"`.
//! - **Critical-path attribution** — each finished job's makespan is blamed
//!   on its dominant phase (setup / map / shuffle / reduce / io-wait), and
//!   blame-seconds accumulate per `(band, phase)`. The engine emits a job
//!   span followed immediately by its four phase spans, so this needs one
//!   pending-job slot, not a per-job table.
//! - **Routing-service ops** — `route_serve` instants from the online
//!   routing binary (decisions, batches, feedback, snapshot saves/restores)
//!   tally per op name. O(op kinds), capped like rejection reasons.
//!
//! Nothing here is keyed by job id, so the footprint is independent of how
//! many jobs stream through — the property the `telemetry_golden` test pins.
//!
//! ## Determinism
//!
//! All state lives in `BTreeMap`s and fixed vectors; exposition iterates in
//! sorted order and formats floats with Rust's shortest-roundtrip `Display`.
//! Same seed, same build ⇒ byte-identical Prometheus and JSON output.

use crate::{ArgValue, TelemetrySink};
use metrics::{LogHistogram, TimeBuckets};
use simcore::{SimDuration, SimTime};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Sizing knobs for [`OnlineAggregator`]. Every field bounds a fixed-size
/// structure; none of them grows with job count.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Initial utilization-timeline bucket width (doubles on coalesce).
    pub timeline_width: SimDuration,
    /// Buckets per utilization track — the memory bound per timeline.
    pub timeline_buckets: usize,
    /// Lower edge of the job-latency histograms, seconds.
    pub latency_min_s: f64,
    /// Upper edge of the job-latency histograms, seconds.
    pub latency_max_s: f64,
    /// Log-spaced buckets per latency histogram.
    pub latency_buckets: usize,
    /// Cap on distinct rejected-alternative reason tags; overflow collapses
    /// into `"(other)"`.
    pub max_reason_tags: usize,
    /// Most recent scheduler-recalibration decision notes retained (the
    /// per-band gauges and counters are unaffected by this cap).
    pub max_recal_notes: usize,
    /// Cap on distinct per-tenant label sets (sojourn histograms and SLO
    /// counters); overflow tenants collapse into `"(other)"`. The arrival
    /// model synthesizes thousands of tenants, so per-tenant telemetry
    /// must stay bounded by config, not by the tenant population.
    pub max_tenant_sets: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            timeline_width: SimDuration::from_secs(60),
            timeline_buckets: 256,
            latency_min_s: 1.0,
            latency_max_s: 1e5,
            latency_buckets: 50,
            max_reason_tags: 64,
            max_recal_notes: 16,
            max_tenant_sets: 32,
        }
    }
}

/// Structural size report — every field is bounded by [`TelemetryConfig`]
/// and the deployment shape, never by the number of jobs replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryFootprint {
    /// Utilization tracks (clusters × task kinds observed).
    pub timeline_tracks: usize,
    /// Buckets held per track (constant: `timeline_buckets`).
    pub timeline_buckets: usize,
    /// Latency histogram label sets (bands × sides observed).
    pub latency_label_sets: usize,
    /// Buckets per latency histogram (constant: `latency_buckets`).
    pub latency_buckets_per_set: usize,
    /// Distinct rejection-reason tags retained (≤ `max_reason_tags` + bands).
    pub reason_tags: usize,
    /// Critical-path pending-job slots (0 or 1).
    pub pending_jobs: usize,
    /// Bands with a live adaptive cross-point gauge (≤ the 4 band labels).
    pub crosspoint_bands: usize,
    /// Recalibration decision notes retained (≤ `max_recal_notes`).
    pub recal_notes: usize,
    /// Per-tenant label sets retained (≤ `max_tenant_sets` + 1 for the
    /// `"(other)"` overflow bucket).
    pub tenant_label_sets: usize,
    /// Routing-service op tags retained (≤ `max_reason_tags` + 1).
    pub route_serve_ops: usize,
}

/// Canonical metric names: every exported `hh_*` Prometheus series paired
/// with the JSON snapshot key its family renders under. Both expositions —
/// [`OnlineAggregator::render_prometheus`] / [`OnlineAggregator::render_json`]
/// and the doctor's `hh_doctor_*` section / incident document — are generated
/// from these constants, so a typo cannot silently fork the text exposition
/// from the JSON one. The `expositions_use_the_shared_name_table` test walks
/// [`names::ALL`] against fully-fed renders to prove it.
pub mod names {
    /// JSON snapshot keys shared with the Prometheus families in [`ALL`].
    pub mod keys {
        /// Events consumed (`hh_telemetry_events_total` / doctor `events`).
        pub const EVENTS: &str = "events";
        /// Completed jobs.
        pub const JOBS: &str = "jobs";
        /// Jobs finishing with a failure note.
        pub const JOB_FAILURES: &str = "job_failures";
        /// End-of-run simulated time, seconds.
        pub const MAKESPAN_S: &str = "makespan_s";
        /// Per-(band, side) latency histograms.
        pub const LATENCY: &str = "latency";
        /// Slot-occupancy timelines.
        pub const UTILIZATION: &str = "utilization";
        /// Fault-layer event tallies.
        pub const FAULTS: &str = "faults";
        /// Bytes moved by storage re-replication.
        pub const REREPLICATED_BYTES: &str = "rereplicated_bytes";
        /// Bytes moved by erasure-coded reconstruction.
        pub const RECONSTRUCTED_BYTES: &str = "reconstructed_bytes";
        /// Degraded-read count and blocked seconds.
        pub const DEGRADED_READS: &str = "degraded_reads";
        /// Seconds tasks spent blocked on degraded reads.
        pub const DEGRADED_READ_SECS: &str = "degraded_read_secs";
        /// Routing decisions per band and side.
        pub const PLACEMENTS: &str = "placements";
        /// Rejected-alternative tallies.
        pub const REJECTIONS: &str = "rejections";
        /// Live adaptive cross points and update counts.
        pub const CROSSPOINT: &str = "crosspoint";
        /// Critical-path blame per band and phase.
        pub const CRITICAL_PATH: &str = "critical_path";
        /// Bytes served per storage/network resource.
        pub const RESOURCES: &str = "resources";
        /// Per-tenant sojourn and SLO attribution.
        pub const TENANTS: &str = "tenants";
        /// Fairness block: Jain index, preemptions, rejections.
        pub const FAIRNESS: &str = "fairness";
        /// Routing-service op tallies.
        pub const ROUTE_SERVE: &str = "route_serve";
        /// Doctor alert counts per kind (incident document).
        pub const ALERTS_TOTAL: &str = "alerts_total";
        /// Doctor incident reports (incident document).
        pub const INCIDENTS: &str = "incidents";
    }

    /// Instrumentation events consumed by the aggregator.
    pub const TELEMETRY_EVENTS_TOTAL: &str = "hh_telemetry_events_total";
    /// Completed jobs observed.
    pub const JOBS_TOTAL: &str = "hh_jobs_total";
    /// Jobs that finished with a failure note.
    pub const JOB_FAILURES_TOTAL: &str = "hh_job_failures_total";
    /// Simulated time at the end of the run.
    pub const REPLAY_MAKESPAN_SECONDS: &str = "hh_replay_makespan_seconds";
    /// Job execution-time quantiles per band and routed side.
    pub const JOB_LATENCY_SECONDS: &str = "hh_job_latency_seconds";
    /// Jobs folded into each latency histogram.
    pub const JOB_LATENCY_JOBS_TOTAL: &str = "hh_job_latency_jobs_total";
    /// Integrated running-task occupancy per cluster and task kind.
    pub const SLOT_BUSY_SECONDS_TOTAL: &str = "hh_slot_busy_seconds_total";
    /// Fault-layer events by kind.
    pub const FAULT_EVENTS_TOTAL: &str = "hh_fault_events_total";
    /// Bytes moved by storage re-replication after node loss.
    pub const REREPLICATED_BYTES_TOTAL: &str = "hh_rereplicated_bytes_total";
    /// Bytes moved by erasure-coded reconstruction after node loss.
    pub const STORAGE_RECONSTRUCTED_BYTES_TOTAL: &str = "hh_storage_reconstructed_bytes_total";
    /// Block reads served while the block's redundancy was lost.
    pub const STORAGE_DEGRADED_READS_TOTAL: &str = "hh_storage_degraded_reads_total";
    /// Task seconds spent blocked on degraded reads.
    pub const STORAGE_DEGRADED_READ_SECONDS_TOTAL: &str = "hh_storage_degraded_read_seconds_total";
    /// Scheduler routing decisions per band and chosen side.
    pub const PLACEMENT_DECISIONS_TOTAL: &str = "hh_placement_decisions_total";
    /// Rejected-alternative tallies per band and reason.
    pub const PLACEMENT_REJECTIONS_TOTAL: &str = "hh_placement_rejections_total";
    /// Live adaptive cross-point threshold per band, bytes.
    pub const CROSSPOINT_BYTES: &str = "hh_crosspoint_bytes";
    /// Threshold recalibrations applied per band.
    pub const CROSSPOINT_UPDATES_TOTAL: &str = "hh_crosspoint_updates_total";
    /// Job makespan attributed to the dominant phase, per band.
    pub const CRITICAL_PATH_SECONDS_TOTAL: &str = "hh_critical_path_seconds_total";
    /// Jobs whose makespan was dominated by each phase, per band.
    pub const CRITICAL_PATH_JOBS_TOTAL: &str = "hh_critical_path_jobs_total";
    /// Bytes served per network/storage resource.
    pub const STORAGE_BYTES_SERVED_TOTAL: &str = "hh_storage_bytes_served_total";
    /// Per-tenant sojourn quantiles.
    pub const TENANT_SOJOURN_SECONDS: &str = "hh_tenant_sojourn_seconds";
    /// Completed jobs per tenant label.
    pub const TENANT_JOBS_TOTAL: &str = "hh_tenant_jobs_total";
    /// SLO misses per tenant label.
    pub const TENANT_SLO_MISS_TOTAL: &str = "hh_tenant_slo_miss_total";
    /// Attempts preempted by the tenant dispatcher.
    pub const TENANT_PREEMPTIONS_TOTAL: &str = "hh_tenant_preemptions_total";
    /// Service time discarded by preempted attempts.
    pub const TENANT_PREEMPT_WASTED_SECONDS_TOTAL: &str = "hh_tenant_preempt_wasted_seconds_total";
    /// Jobs refused by deadline-aware admission control.
    pub const TENANT_REJECTIONS_TOTAL: &str = "hh_tenant_rejections_total";
    /// Jain index over weighted per-tenant usage.
    pub const TENANT_JAIN_FAIRNESS_INDEX: &str = "hh_tenant_jain_fairness_index";
    /// Routing-service operations served, per op kind.
    pub const ROUTE_SERVE_OPS_TOTAL: &str = "hh_route_serve_ops_total";
    /// Alerts fired by the `obs::doctor` detectors, per kind.
    pub const DOCTOR_ALERTS_TOTAL: &str = "hh_doctor_alerts_total";
    /// Incident reports retained by the doctor.
    pub const DOCTOR_INCIDENTS: &str = "hh_doctor_incidents";

    /// `(Prometheus series, JSON key)` for every exported metric family.
    /// Families sharing a JSON section repeat its key.
    pub const ALL: &[(&str, &str)] = &[
        (TELEMETRY_EVENTS_TOTAL, keys::EVENTS),
        (JOBS_TOTAL, keys::JOBS),
        (JOB_FAILURES_TOTAL, keys::JOB_FAILURES),
        (REPLAY_MAKESPAN_SECONDS, keys::MAKESPAN_S),
        (JOB_LATENCY_SECONDS, keys::LATENCY),
        (JOB_LATENCY_JOBS_TOTAL, keys::LATENCY),
        (SLOT_BUSY_SECONDS_TOTAL, keys::UTILIZATION),
        (FAULT_EVENTS_TOTAL, keys::FAULTS),
        (REREPLICATED_BYTES_TOTAL, keys::REREPLICATED_BYTES),
        (STORAGE_RECONSTRUCTED_BYTES_TOTAL, keys::RECONSTRUCTED_BYTES),
        (STORAGE_DEGRADED_READS_TOTAL, keys::DEGRADED_READS),
        (
            STORAGE_DEGRADED_READ_SECONDS_TOTAL,
            keys::DEGRADED_READ_SECS,
        ),
        (PLACEMENT_DECISIONS_TOTAL, keys::PLACEMENTS),
        (PLACEMENT_REJECTIONS_TOTAL, keys::REJECTIONS),
        (CROSSPOINT_BYTES, keys::CROSSPOINT),
        (CROSSPOINT_UPDATES_TOTAL, keys::CROSSPOINT),
        (CRITICAL_PATH_SECONDS_TOTAL, keys::CRITICAL_PATH),
        (CRITICAL_PATH_JOBS_TOTAL, keys::CRITICAL_PATH),
        (STORAGE_BYTES_SERVED_TOTAL, keys::RESOURCES),
        (TENANT_SOJOURN_SECONDS, keys::TENANTS),
        (TENANT_JOBS_TOTAL, keys::TENANTS),
        (TENANT_SLO_MISS_TOTAL, keys::TENANTS),
        (TENANT_PREEMPTIONS_TOTAL, keys::FAIRNESS),
        (TENANT_PREEMPT_WASTED_SECONDS_TOTAL, keys::FAIRNESS),
        (TENANT_REJECTIONS_TOTAL, keys::FAIRNESS),
        (TENANT_JAIN_FAIRNESS_INDEX, keys::FAIRNESS),
        (ROUTE_SERVE_OPS_TOTAL, keys::ROUTE_SERVE),
        (DOCTOR_ALERTS_TOTAL, keys::ALERTS_TOTAL),
        (DOCTOR_INCIDENTS, keys::INCIDENTS),
    ];
}

#[derive(Debug, Clone, PartialEq)]
struct UtilTrack {
    last_t: SimTime,
    last_v: f64,
    busy: TimeBuckets,
}

#[derive(Debug, Clone, PartialEq)]
struct Blame {
    seconds: f64,
    jobs: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct PendingJob {
    tid: u32,
    band: &'static str,
    side: String,
    execution: SimDuration,
    io_wait: SimDuration,
    phases: [Option<SimDuration>; 4],
}

/// Streaming metrics aggregator; see the module docs for the full model.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineAggregator {
    cfg: TelemetryConfig,
    events: u64,
    process_names: BTreeMap<u32, String>,
    util: BTreeMap<(u32, &'static str), UtilTrack>,
    latency: BTreeMap<(&'static str, String), LogHistogram>,
    jobs_total: u64,
    job_failures: u64,
    faults: BTreeMap<String, u64>,
    rereplicated_bytes: f64,
    reconstructed_bytes: f64,
    degraded_reads: u64,
    degraded_read_secs: f64,
    placements: BTreeMap<(String, &'static str), u64>,
    rejections: BTreeMap<(String, String), u64>,
    /// Live adaptive cross-point per band: latest `new_bytes` seen on a
    /// `scheduler`/`recalibrate` instant. Bounded by the band label set.
    crosspoint_bytes: BTreeMap<String, f64>,
    /// Recalibrations applied per band.
    crosspoint_updates: BTreeMap<String, u64>,
    /// Most recent recalibration notes, capped at `max_recal_notes`.
    recal_notes: VecDeque<String>,
    resource_bytes: BTreeMap<String, f64>,
    blame: BTreeMap<(&'static str, &'static str), Blame>,
    pending: Option<PendingJob>,
    /// Tenants holding a named label slot: the `max_tenant_sets` *smallest*
    /// tenant ids seen so far. A smaller late arrival displaces the largest
    /// named tenant, whose aggregates fold into `"(other)"` — so the final
    /// membership is a pure function of the event multiset, independent of
    /// arrival order (the windowed executor may interleave cells any way).
    tenant_named: BTreeSet<u64>,
    /// Per-tenant sojourn-time histograms (submit → completion, including
    /// queueing delay), keyed by `t<id>` and capped at `max_tenant_sets`
    /// named labels plus the `"(other)"` overflow bucket.
    tenant_sojourn: BTreeMap<String, LogHistogram>,
    /// SLO misses per tenant label (same capping as `tenant_sojourn`).
    tenant_slo_misses: BTreeMap<String, u64>,
    tenant_preemptions: u64,
    tenant_preempt_wasted_s: f64,
    tenant_rejections: u64,
    /// Streaming Jain-index accumulators over end-of-run `tenant`/`share`
    /// instants: x = weighted usage per tenant, jain = (Σx)²/(n·Σx²).
    share_n: u64,
    share_sum: f64,
    share_sum_sq: f64,
    /// Routing-service request audit: `route_serve` instants tallied per op
    /// name (decision / batch / feedback / snapshot_save / snapshot_restore),
    /// capped at `max_reason_tags` with `"(other)"` overflow.
    route_serve: BTreeMap<String, u64>,
    end_time: SimTime,
}

/// The Algorithm-1 band a shuffle/input ratio falls in; mirrors
/// `CrossPointScheduler::band_for` so job-level metrics correlate with the
/// scheduler's own decision labels.
pub(crate) fn band_of(ratio: Option<f64>) -> &'static str {
    match ratio {
        None => "unknown-ratio",
        Some(r) if r > 1.0 => "S/I>1",
        Some(r) if r >= 0.4 => "0.4<=S/I<=1",
        Some(_) => "S/I<0.4",
    }
}

pub(crate) fn arg_f64(args: &[(&'static str, ArgValue)], key: &str) -> Option<f64> {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::F64(x) => Some(*x),
            ArgValue::U64(x) => Some(*x as f64),
            _ => None,
        })
}

pub(crate) fn arg_u64(args: &[(&'static str, ArgValue)], key: &str) -> Option<u64> {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::U64(x) => Some(*x),
            _ => None,
        })
}

pub(crate) fn arg_str<'a>(args: &'a [(&'static str, ArgValue)], key: &str) -> Option<&'a str> {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

pub(crate) fn arg_bool(args: &[(&'static str, ArgValue)], key: &str) -> Option<bool> {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::Bool(b) => Some(*b),
            _ => None,
        })
}

impl OnlineAggregator {
    /// A fresh aggregator sized by `cfg`.
    pub fn new(cfg: TelemetryConfig) -> Self {
        OnlineAggregator {
            cfg,
            events: 0,
            process_names: BTreeMap::new(),
            util: BTreeMap::new(),
            latency: BTreeMap::new(),
            jobs_total: 0,
            job_failures: 0,
            faults: BTreeMap::new(),
            rereplicated_bytes: 0.0,
            reconstructed_bytes: 0.0,
            degraded_reads: 0,
            degraded_read_secs: 0.0,
            placements: BTreeMap::new(),
            rejections: BTreeMap::new(),
            crosspoint_bytes: BTreeMap::new(),
            crosspoint_updates: BTreeMap::new(),
            recal_notes: VecDeque::new(),
            resource_bytes: BTreeMap::new(),
            blame: BTreeMap::new(),
            pending: None,
            tenant_named: BTreeSet::new(),
            tenant_sojourn: BTreeMap::new(),
            tenant_slo_misses: BTreeMap::new(),
            tenant_preemptions: 0,
            tenant_preempt_wasted_s: 0.0,
            tenant_rejections: 0,
            share_n: 0,
            share_sum: 0.0,
            share_sum_sq: 0.0,
            route_serve: BTreeMap::new(),
            end_time: SimTime::ZERO,
        }
    }

    /// Instrumentation events consumed so far.
    pub fn events_seen(&self) -> u64 {
        self.events
    }

    /// Completed jobs observed (via their job spans).
    pub fn jobs_seen(&self) -> u64 {
        self.jobs_total
    }

    /// Structural memory bound — see [`TelemetryFootprint`].
    pub fn footprint(&self) -> TelemetryFootprint {
        TelemetryFootprint {
            timeline_tracks: self.util.len(),
            timeline_buckets: self.cfg.timeline_buckets,
            latency_label_sets: self.latency.len(),
            latency_buckets_per_set: self.cfg.latency_buckets,
            reason_tags: self.rejections.len(),
            pending_jobs: usize::from(self.pending.is_some()),
            crosspoint_bands: self.crosspoint_bytes.len(),
            recal_notes: self.recal_notes.len(),
            tenant_label_sets: self.tenant_sojourn.len(),
            route_serve_ops: self.route_serve.len(),
        }
    }

    /// Jain fairness index over the weighted per-tenant usages reported by
    /// end-of-run `tenant`/`share` instants; `None` until a share is seen.
    pub fn jain_index(&self) -> Option<f64> {
        if self.share_n == 0 || self.share_sum_sq <= 0.0 {
            return None;
        }
        Some(self.share_sum * self.share_sum / (self.share_n as f64 * self.share_sum_sq))
    }

    /// The tenant label a per-tenant series is folded under. The
    /// `max_tenant_sets` smallest tenant ids observed so far get their own
    /// `t<id>` label; everyone else folds into `"(other)"`, which never
    /// consumes a cap slot. When a smaller id arrives after the cap fills,
    /// it displaces the largest named tenant — that tenant's histogram and
    /// SLO counter merge into `"(other)"` (merge commutes) — so which
    /// tenants end up in `"(other)"` cannot depend on event arrival order.
    fn tenant_label(&mut self, tenant: u64) -> String {
        if self.cfg.max_tenant_sets == 0 {
            return "(other)".to_string();
        }
        if self.tenant_named.contains(&tenant) {
            return format!("t{tenant}");
        }
        if self.tenant_named.len() < self.cfg.max_tenant_sets {
            self.tenant_named.insert(tenant);
            return format!("t{tenant}");
        }
        let largest = *self.tenant_named.iter().next_back().expect("cap > 0");
        if tenant >= largest {
            return "(other)".to_string();
        }
        self.tenant_named.remove(&largest);
        self.tenant_named.insert(tenant);
        let evicted = format!("t{largest}");
        if let Some(hist) = self.tenant_sojourn.remove(&evicted) {
            self.tenant_sojourn
                .entry("(other)".to_string())
                .or_insert_with(|| {
                    LogHistogram::new(
                        self.cfg.latency_min_s,
                        self.cfg.latency_max_s,
                        self.cfg.latency_buckets,
                    )
                })
                .merge(&hist);
        }
        if let Some(misses) = self.tenant_slo_misses.remove(&evicted) {
            *self
                .tenant_slo_misses
                .entry("(other)".to_string())
                .or_insert(0) += misses;
        }
        format!("t{tenant}")
    }

    fn finalize_pending(&mut self) {
        let Some(p) = self.pending.take() else {
            return;
        };
        // Blame candidates in fixed order; strict `>` keeps the first on ties.
        let candidates = [
            ("setup", p.phases[0].unwrap_or(SimDuration::ZERO)),
            ("map", p.phases[1].unwrap_or(SimDuration::ZERO)),
            ("shuffle", p.phases[2].unwrap_or(SimDuration::ZERO)),
            ("reduce", p.phases[3].unwrap_or(SimDuration::ZERO)),
            ("io_wait", p.io_wait),
        ];
        let mut dominant = candidates[0];
        for c in &candidates[1..] {
            if c.1 > dominant.1 {
                dominant = *c;
            }
        }
        let entry = self.blame.entry((p.band, dominant.0)).or_insert(Blame {
            seconds: 0.0,
            jobs: 0,
        });
        entry.seconds += p.execution.as_secs_f64();
        entry.jobs += 1;
    }

    fn cluster_label(&self, pid: u32) -> String {
        match self.process_names.get(&pid) {
            Some(name) => name.strip_prefix("cluster/").unwrap_or(name).to_string(),
            None => format!("pid{pid}"),
        }
    }
}

impl TelemetrySink for OnlineAggregator {
    fn span(
        &mut self,
        cat: &'static str,
        name: &str,
        _pid: u32,
        tid: u32,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, ArgValue)],
    ) {
        self.events += 1;
        match cat {
            "job" => {
                // A job span opens a fresh critical-path slot; an unfinished
                // previous slot (missing phase spans) is flushed as-is.
                self.finalize_pending();
                self.jobs_total += 1;
                if arg_str(args, "failed").is_some() {
                    self.job_failures += 1;
                }
                let band = band_of(arg_f64(args, "ratio"));
                let side = arg_str(args, "cluster").unwrap_or("?").to_string();
                let execution = end.since(start);
                self.latency
                    .entry((band, side.clone()))
                    .or_insert_with(|| {
                        LogHistogram::new(
                            self.cfg.latency_min_s,
                            self.cfg.latency_max_s,
                            self.cfg.latency_buckets,
                        )
                    })
                    .push(execution.as_secs_f64());
                self.pending = Some(PendingJob {
                    tid,
                    band,
                    side,
                    execution,
                    io_wait: SimDuration(arg_u64(args, "io_wait").unwrap_or(0)),
                    phases: [None; 4],
                });
            }
            "phase" => {
                let slot = match name {
                    "setup" => 0,
                    "map" => 1,
                    "shuffle" => 2,
                    "reduce" => 3,
                    _ => return,
                };
                let done = match self.pending.as_mut() {
                    Some(p) if p.tid == tid => {
                        p.phases[slot] = Some(end.since(start));
                        p.phases.iter().all(|d| d.is_some())
                    }
                    _ => false,
                };
                if done {
                    self.finalize_pending();
                }
            }
            _ => {}
        }
    }

    fn instant(
        &mut self,
        cat: &'static str,
        name: &str,
        _pid: u32,
        _tid: u32,
        _ts: SimTime,
        args: &[(&'static str, ArgValue)],
    ) {
        self.events += 1;
        match cat {
            "fault" => {
                *self.faults.entry(name.to_string()).or_insert(0) += 1;
                match name {
                    "re_replicate" => {
                        self.rereplicated_bytes += arg_f64(args, "bytes").unwrap_or(0.0)
                    }
                    "reconstruct" => {
                        self.reconstructed_bytes += arg_f64(args, "bytes").unwrap_or(0.0)
                    }
                    "degraded_read" => {
                        self.degraded_reads += 1;
                        self.degraded_read_secs += arg_f64(args, "secs").unwrap_or(0.0);
                    }
                    _ => {}
                }
            }
            "placement" => {
                let side = match name {
                    "place:scale-up" => "scale-up",
                    "place:scale-out" => "scale-out",
                    _ => "?",
                };
                let band = arg_str(args, "band").unwrap_or("?").to_string();
                *self.placements.entry((band.clone(), side)).or_insert(0) += 1;
                if let Some(note) = arg_str(args, "note") {
                    let tag = note.split(':').next().unwrap_or(note).trim();
                    let key = (band, tag.to_string());
                    if self.rejections.contains_key(&key)
                        || self.rejections.len() < self.cfg.max_reason_tags
                    {
                        *self.rejections.entry(key).or_insert(0) += 1;
                    } else {
                        *self
                            .rejections
                            .entry((key.0, "(other)".to_string()))
                            .or_insert(0) += 1;
                    }
                }
            }
            // Closed-loop recalibration audit (adaptive replays): track the
            // live per-band cross point, count updates, and keep the most
            // recent decision notes.
            "scheduler" if name == "recalibrate" => {
                let band = arg_str(args, "band").unwrap_or("?").to_string();
                if let Some(new_bytes) = arg_u64(args, "new_bytes") {
                    self.crosspoint_bytes.insert(band.clone(), new_bytes as f64);
                }
                *self.crosspoint_updates.entry(band).or_insert(0) += 1;
                if let Some(note) = arg_str(args, "note") {
                    if self.cfg.max_recal_notes > 0 {
                        if self.recal_notes.len() == self.cfg.max_recal_notes {
                            self.recal_notes.pop_front();
                        }
                        self.recal_notes.push_back(note.to_string());
                    }
                }
            }
            "resource" => {
                *self.resource_bytes.entry(name.to_string()).or_insert(0.0) +=
                    arg_f64(args, "bytes_served").unwrap_or(0.0);
            }
            // Multi-tenant dispatch audit: per-tenant sojourn and SLO
            // attribution from the tenant router, plus dispatcher-level
            // preemption/rejection evidence and end-of-run share reports
            // feeding the streaming Jain index.
            "tenant" => match name {
                "complete" => {
                    let Some(tenant) = arg_u64(args, "tenant") else {
                        return;
                    };
                    let label = self.tenant_label(tenant);
                    let sojourn = arg_f64(args, "sojourn_s").unwrap_or(0.0);
                    self.tenant_sojourn
                        .entry(label.clone())
                        .or_insert_with(|| {
                            LogHistogram::new(
                                self.cfg.latency_min_s,
                                self.cfg.latency_max_s,
                                self.cfg.latency_buckets,
                            )
                        })
                        .push(sojourn);
                    if arg_bool(args, "slo_miss").unwrap_or(false) {
                        *self.tenant_slo_misses.entry(label).or_insert(0) += 1;
                    }
                }
                "preempt" => {
                    self.tenant_preemptions += 1;
                    self.tenant_preempt_wasted_s += arg_f64(args, "wasted_s").unwrap_or(0.0);
                }
                "reject" => self.tenant_rejections += 1,
                "share" => {
                    let weight = arg_f64(args, "weight")
                        .unwrap_or(1.0)
                        .max(f64::MIN_POSITIVE);
                    let x = arg_f64(args, "usage_s").unwrap_or(0.0) / weight;
                    self.share_n += 1;
                    self.share_sum += x;
                    self.share_sum_sq += x * x;
                }
                _ => {}
            },
            // Online routing-service audit: every served op self-reports as
            // one instant; cardinality is bounded like rejection reasons.
            "route_serve" => {
                if self.route_serve.contains_key(name)
                    || self.route_serve.len() < self.cfg.max_reason_tags
                {
                    *self.route_serve.entry(name.to_string()).or_insert(0) += 1;
                } else {
                    *self.route_serve.entry("(other)".to_string()).or_insert(0) += 1;
                }
            }
            _ => {}
        }
    }

    fn counter(
        &mut self,
        cat: &'static str,
        name: &'static str,
        pid: u32,
        ts: SimTime,
        value: f64,
    ) {
        self.events += 1;
        if cat != "sched" {
            return;
        }
        let kind = match name {
            "running_maps" => "map",
            "running_reduces" => "reduce",
            _ => return,
        };
        let track = self.util.entry((pid, kind)).or_insert_with(|| UtilTrack {
            last_t: ts,
            last_v: 0.0,
            busy: TimeBuckets::new(self.cfg.timeline_width.0.max(1), self.cfg.timeline_buckets),
        });
        track.busy.add_range(track.last_t.0, ts.0, track.last_v);
        track.last_t = ts;
        track.last_v = value;
    }

    fn name_process(&mut self, pid: u32, name: &str) {
        self.events += 1;
        self.process_names.insert(pid, name.to_string());
    }

    fn finish(&mut self, now: SimTime) {
        for track in self.util.values_mut() {
            track.busy.add_range(track.last_t.0, now.0, track.last_v);
            track.last_t = now;
        }
        self.finalize_pending();
        self.end_time = now;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ----------------------------------------------------------------------
// Exposition
// ----------------------------------------------------------------------

/// Escape a Prometheus label value: backslash, double quote, newline.
fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape a JSON string (mirrors the chrome exporter's conventions).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shortest-roundtrip float rendering; integral values keep a trailing `.0`
/// ambiguity-free form via Rust's `Display` (e.g. `3` prints as `3`).
pub(crate) fn num(v: f64) -> String {
    format!("{v}")
}

impl OnlineAggregator {
    /// Render the aggregates in the Prometheus text exposition format.
    ///
    /// Metric naming scheme: everything is prefixed `hh_` (hybrid-Hadoop),
    /// counters end in `_total`, durations are `_seconds`, and quantile
    /// gauges carry a `quantile` label — see DESIGN.md §12.
    pub fn render_prometheus(&self) -> String {
        let mut o = String::new();
        let metric = |out: &mut String, name: &str, help: &str, ty: &str| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {ty}\n"));
        };

        metric(
            &mut o,
            names::TELEMETRY_EVENTS_TOTAL,
            "Instrumentation events consumed by the aggregator.",
            "counter",
        );
        o.push_str(&format!(
            "{} {}\n",
            names::TELEMETRY_EVENTS_TOTAL,
            self.events
        ));

        metric(
            &mut o,
            names::JOBS_TOTAL,
            "Completed jobs observed.",
            "counter",
        );
        o.push_str(&format!("{} {}\n", names::JOBS_TOTAL, self.jobs_total));
        metric(
            &mut o,
            names::JOB_FAILURES_TOTAL,
            "Jobs that finished with a failure note.",
            "counter",
        );
        o.push_str(&format!(
            "{} {}\n",
            names::JOB_FAILURES_TOTAL,
            self.job_failures
        ));

        metric(
            &mut o,
            names::REPLAY_MAKESPAN_SECONDS,
            "Simulated time at the end of the run.",
            "gauge",
        );
        o.push_str(&format!(
            "{} {}\n",
            names::REPLAY_MAKESPAN_SECONDS,
            num(self.end_time.since(SimTime::ZERO).as_secs_f64())
        ));

        metric(
            &mut o,
            names::JOB_LATENCY_SECONDS,
            "Job execution-time quantiles per shuffle-ratio band and routed side.",
            "gauge",
        );
        for ((band, side), hist) in &self.latency {
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                if let Some(v) = hist.quantile(q) {
                    o.push_str(&format!(
                        "{}{{band=\"{}\",side=\"{}\",quantile=\"{label}\"}} {}\n",
                        names::JOB_LATENCY_SECONDS,
                        prom_escape(band),
                        prom_escape(side),
                        num(v)
                    ));
                }
            }
        }
        metric(
            &mut o,
            names::JOB_LATENCY_JOBS_TOTAL,
            "Jobs folded into each latency histogram.",
            "counter",
        );
        for ((band, side), hist) in &self.latency {
            o.push_str(&format!(
                "{}{{band=\"{}\",side=\"{}\"}} {}\n",
                names::JOB_LATENCY_JOBS_TOTAL,
                prom_escape(band),
                prom_escape(side),
                hist.total()
            ));
        }

        metric(
            &mut o,
            names::SLOT_BUSY_SECONDS_TOTAL,
            "Integrated running-task occupancy (slot-seconds) per cluster and task kind.",
            "counter",
        );
        for ((pid, kind), track) in &self.util {
            let slot_seconds: f64 = track
                .busy
                .buckets()
                .map(|(_, _, slot_ticks)| slot_ticks)
                .sum::<f64>()
                / simcore::TICKS_PER_SEC as f64;
            o.push_str(&format!(
                "{}{{cluster=\"{}\",kind=\"{kind}\"}} {}\n",
                names::SLOT_BUSY_SECONDS_TOTAL,
                prom_escape(&self.cluster_label(*pid)),
                num(slot_seconds)
            ));
        }

        metric(
            &mut o,
            names::FAULT_EVENTS_TOTAL,
            "Fault-layer events by kind (crashes, recoveries, speculative kills, ...).",
            "counter",
        );
        for (kind, n) in &self.faults {
            o.push_str(&format!(
                "{}{{kind=\"{}\"}} {n}\n",
                names::FAULT_EVENTS_TOTAL,
                prom_escape(kind)
            ));
        }
        metric(
            &mut o,
            names::REREPLICATED_BYTES_TOTAL,
            "Bytes moved by storage re-replication after node loss.",
            "counter",
        );
        o.push_str(&format!(
            "{} {}\n",
            names::REREPLICATED_BYTES_TOTAL,
            num(self.rereplicated_bytes)
        ));
        metric(
            &mut o,
            names::STORAGE_RECONSTRUCTED_BYTES_TOTAL,
            "Bytes moved by erasure-coded reconstruction after node loss.",
            "counter",
        );
        o.push_str(&format!(
            "{} {}\n",
            names::STORAGE_RECONSTRUCTED_BYTES_TOTAL,
            num(self.reconstructed_bytes)
        ));
        metric(
            &mut o,
            names::STORAGE_DEGRADED_READS_TOTAL,
            "Block reads served while the block's redundancy was lost.",
            "counter",
        );
        o.push_str(&format!(
            "{} {}\n",
            names::STORAGE_DEGRADED_READS_TOTAL,
            self.degraded_reads
        ));
        metric(
            &mut o,
            names::STORAGE_DEGRADED_READ_SECONDS_TOTAL,
            "Task seconds spent blocked on degraded reads.",
            "counter",
        );
        o.push_str(&format!(
            "{} {}\n",
            names::STORAGE_DEGRADED_READ_SECONDS_TOTAL,
            num(self.degraded_read_secs)
        ));

        metric(
            &mut o,
            names::PLACEMENT_DECISIONS_TOTAL,
            "Scheduler routing decisions per band and chosen side.",
            "counter",
        );
        for ((band, side), n) in &self.placements {
            o.push_str(&format!(
                "{}{{band=\"{}\",side=\"{side}\"}} {n}\n",
                names::PLACEMENT_DECISIONS_TOTAL,
                prom_escape(band)
            ));
        }
        metric(
            &mut o,
            names::PLACEMENT_REJECTIONS_TOTAL,
            "Rejected-alternative tallies per band, keyed by the decision-note reason.",
            "counter",
        );
        for ((band, reason), n) in &self.rejections {
            o.push_str(&format!(
                "{}{{band=\"{}\",reason=\"{}\"}} {n}\n",
                names::PLACEMENT_REJECTIONS_TOTAL,
                prom_escape(band),
                prom_escape(reason)
            ));
        }

        metric(
            &mut o,
            names::CROSSPOINT_BYTES,
            "Live adaptive cross-point threshold per band, bytes (last recalibration).",
            "gauge",
        );
        for (band, bytes) in &self.crosspoint_bytes {
            o.push_str(&format!(
                "{}{{band=\"{}\"}} {}\n",
                names::CROSSPOINT_BYTES,
                prom_escape(band),
                num(*bytes)
            ));
        }
        metric(
            &mut o,
            names::CROSSPOINT_UPDATES_TOTAL,
            "Threshold recalibrations applied by the adaptive scheduler, per band.",
            "counter",
        );
        for (band, n) in &self.crosspoint_updates {
            o.push_str(&format!(
                "{}{{band=\"{}\"}} {n}\n",
                names::CROSSPOINT_UPDATES_TOTAL,
                prom_escape(band)
            ));
        }

        metric(
            &mut o,
            names::CRITICAL_PATH_SECONDS_TOTAL,
            "Job makespan attributed to the dominant phase, per band.",
            "counter",
        );
        for ((band, phase), b) in &self.blame {
            o.push_str(&format!(
                "{}{{band=\"{}\",phase=\"{phase}\"}} {}\n",
                names::CRITICAL_PATH_SECONDS_TOTAL,
                prom_escape(band),
                num(b.seconds)
            ));
        }
        metric(
            &mut o,
            names::CRITICAL_PATH_JOBS_TOTAL,
            "Jobs whose makespan was dominated by each phase, per band.",
            "counter",
        );
        for ((band, phase), b) in &self.blame {
            o.push_str(&format!(
                "{}{{band=\"{}\",phase=\"{phase}\"}} {}\n",
                names::CRITICAL_PATH_JOBS_TOTAL,
                prom_escape(band),
                b.jobs
            ));
        }

        metric(
            &mut o,
            names::STORAGE_BYTES_SERVED_TOTAL,
            "Bytes served per network/storage resource over the whole run.",
            "counter",
        );
        for (res, bytes) in &self.resource_bytes {
            o.push_str(&format!(
                "{}{{resource=\"{}\"}} {}\n",
                names::STORAGE_BYTES_SERVED_TOTAL,
                prom_escape(res),
                num(*bytes)
            ));
        }

        // Multi-tenant sections appear only when a tenant dispatch fed the
        // aggregator; single-tenant replays render byte-identically to the
        // pre-tenant exposition.
        if !self.tenant_sojourn.is_empty() || self.share_n > 0 {
            metric(
                &mut o,
                names::TENANT_SOJOURN_SECONDS,
                "Per-tenant job sojourn (submit to completion, queueing included) quantiles.",
                "gauge",
            );
            for (tenant, hist) in &self.tenant_sojourn {
                for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                    if let Some(v) = hist.quantile(q) {
                        o.push_str(&format!(
                            "{}{{tenant=\"{}\",quantile=\"{label}\"}} {}\n",
                            names::TENANT_SOJOURN_SECONDS,
                            prom_escape(tenant),
                            num(v)
                        ));
                    }
                }
            }
            metric(
                &mut o,
                names::TENANT_JOBS_TOTAL,
                "Completed jobs attributed to each tenant label.",
                "counter",
            );
            for (tenant, hist) in &self.tenant_sojourn {
                o.push_str(&format!(
                    "{}{{tenant=\"{}\"}} {}\n",
                    names::TENANT_JOBS_TOTAL,
                    prom_escape(tenant),
                    hist.total()
                ));
            }
            metric(
                &mut o,
                names::TENANT_SLO_MISS_TOTAL,
                "Jobs finishing past their tenant-class SLO, per tenant label.",
                "counter",
            );
            for (tenant, n) in &self.tenant_slo_misses {
                o.push_str(&format!(
                    "{}{{tenant=\"{}\"}} {n}\n",
                    names::TENANT_SLO_MISS_TOTAL,
                    prom_escape(tenant)
                ));
            }
            metric(
                &mut o,
                names::TENANT_PREEMPTIONS_TOTAL,
                "Running attempts preempted by the tenant dispatcher.",
                "counter",
            );
            o.push_str(&format!(
                "{} {}\n",
                names::TENANT_PREEMPTIONS_TOTAL,
                self.tenant_preemptions
            ));
            metric(
                &mut o,
                names::TENANT_PREEMPT_WASTED_SECONDS_TOTAL,
                "Service time discarded by preempted attempts (restart cost).",
                "counter",
            );
            o.push_str(&format!(
                "{} {}\n",
                names::TENANT_PREEMPT_WASTED_SECONDS_TOTAL,
                num(self.tenant_preempt_wasted_s)
            ));
            metric(
                &mut o,
                names::TENANT_REJECTIONS_TOTAL,
                "Jobs refused by deadline-aware admission control.",
                "counter",
            );
            o.push_str(&format!(
                "{} {}\n",
                names::TENANT_REJECTIONS_TOTAL,
                self.tenant_rejections
            ));
            if let Some(jain) = self.jain_index() {
                metric(
                    &mut o,
                    names::TENANT_JAIN_FAIRNESS_INDEX,
                    "Jain index over weighted per-tenant usage; 1.0 is perfectly fair.",
                    "gauge",
                );
                o.push_str(&format!(
                    "{} {}\n",
                    names::TENANT_JAIN_FAIRNESS_INDEX,
                    num(jain)
                ));
            }
        }

        // Routing-service section: only when the route_serve binary fed the
        // aggregator, so replay expositions stay byte-identical.
        if !self.route_serve.is_empty() {
            metric(
                &mut o,
                names::ROUTE_SERVE_OPS_TOTAL,
                "Online routing-service operations served, per op kind.",
                "counter",
            );
            for (op, n) in &self.route_serve {
                o.push_str(&format!(
                    "{}{{op=\"{}\"}} {n}\n",
                    names::ROUTE_SERVE_OPS_TOTAL,
                    prom_escape(op)
                ));
            }
        }
        o
    }

    /// Render the full snapshot — including the utilization timelines and
    /// raw histogram buckets that do not fit the Prometheus text model — as
    /// one deterministic JSON object.
    pub fn render_json(&self) -> String {
        let tick = 1.0 / simcore::TICKS_PER_SEC as f64;
        let mut o = String::from("{\n");
        o.push_str("\"schema\": \"hybrid-hadoop-telemetry/v1\",\n");
        o.push_str(&format!("\"{}\": {},\n", names::keys::EVENTS, self.events));
        o.push_str(&format!(
            "\"{}\": {},\n",
            names::keys::JOBS,
            self.jobs_total
        ));
        o.push_str(&format!(
            "\"{}\": {},\n",
            names::keys::JOB_FAILURES,
            self.job_failures
        ));
        o.push_str(&format!(
            "\"{}\": {},\n",
            names::keys::MAKESPAN_S,
            num(self.end_time.since(SimTime::ZERO).as_secs_f64())
        ));

        o.push_str(&format!("\"{}\": [\n", names::keys::LATENCY));
        let mut first = true;
        for ((band, side), hist) in &self.latency {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            let q = |p: f64| hist.quantile(p).map(num).unwrap_or_else(|| "null".into());
            let buckets: Vec<String> = hist
                .buckets()
                .iter()
                .map(|(lo, hi, c)| format!("[{},{},{c}]", num(*lo), num(*hi)))
                .collect();
            o.push_str(&format!(
                "{{\"band\": {}, \"side\": {}, \"count\": {}, \"underflow\": {}, \"overflow\": {}, \"rejected\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                json_string(band),
                json_string(side),
                hist.total(),
                hist.underflow(),
                hist.overflow(),
                hist.rejected(),
                q(0.5),
                q(0.95),
                q(0.99),
                buckets.join(",")
            ));
        }
        o.push_str("\n],\n");

        o.push_str(&format!("\"{}\": [\n", names::keys::UTILIZATION));
        first = true;
        for ((pid, kind), track) in &self.util {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            let buckets: Vec<String> = track
                .busy
                .buckets()
                .map(|(t0, t1, slot_ticks)| {
                    format!(
                        "[{},{},{}]",
                        num(t0 as f64 * tick),
                        num(t1 as f64 * tick),
                        num(slot_ticks * tick)
                    )
                })
                .collect();
            o.push_str(&format!(
                "{{\"cluster\": {}, \"kind\": {}, \"bucket_width_s\": {}, \"coalesced\": {}, \"busy_slot_seconds\": [{}]}}",
                json_string(&self.cluster_label(*pid)),
                json_string(kind),
                num(track.busy.width() as f64 * tick),
                track.busy.coalesce_count(),
                buckets.join(",")
            ));
        }
        o.push_str("\n],\n");

        o.push_str(&format!("\"{}\": {{", names::keys::FAULTS));
        first = true;
        for (kind, n) in &self.faults {
            if !first {
                o.push(',');
            }
            first = false;
            o.push_str(&format!("{}: {n}", json_string(kind)));
        }
        o.push_str("},\n");
        o.push_str(&format!(
            "\"{}\": {},\n",
            names::keys::REREPLICATED_BYTES,
            num(self.rereplicated_bytes)
        ));
        o.push_str(&format!(
            "\"{}\": {},\n",
            names::keys::RECONSTRUCTED_BYTES,
            num(self.reconstructed_bytes)
        ));
        o.push_str(&format!(
            "\"{}\": {},\n",
            names::keys::DEGRADED_READS,
            self.degraded_reads
        ));
        o.push_str(&format!(
            "\"{}\": {},\n",
            names::keys::DEGRADED_READ_SECS,
            num(self.degraded_read_secs)
        ));

        o.push_str(&format!("\"{}\": [\n", names::keys::PLACEMENTS));
        first = true;
        for ((band, side), n) in &self.placements {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            o.push_str(&format!(
                "{{\"band\": {}, \"side\": {}, \"count\": {n}}}",
                json_string(band),
                json_string(side)
            ));
        }
        o.push_str("\n],\n");

        o.push_str(&format!("\"{}\": [\n", names::keys::REJECTIONS));
        first = true;
        for ((band, reason), n) in &self.rejections {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            o.push_str(&format!(
                "{{\"band\": {}, \"reason\": {}, \"count\": {n}}}",
                json_string(band),
                json_string(reason)
            ));
        }
        o.push_str("\n],\n");

        o.push_str(&format!("\"{}\": [\n", names::keys::CROSSPOINT));
        first = true;
        for (band, bytes) in &self.crosspoint_bytes {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            let updates = self.crosspoint_updates.get(band).copied().unwrap_or(0);
            o.push_str(&format!(
                "{{\"band\": {}, \"threshold_bytes\": {}, \"updates\": {updates}}}",
                json_string(band),
                num(*bytes)
            ));
        }
        o.push_str("\n],\n");

        o.push_str("\"recalibration_notes\": [\n");
        first = true;
        for note in &self.recal_notes {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            o.push_str(&json_string(note));
        }
        o.push_str("\n],\n");

        o.push_str(&format!("\"{}\": [\n", names::keys::CRITICAL_PATH));
        first = true;
        for ((band, phase), b) in &self.blame {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            o.push_str(&format!(
                "{{\"band\": {}, \"phase\": {}, \"blame_seconds\": {}, \"jobs\": {}}}",
                json_string(band),
                json_string(phase),
                num(b.seconds),
                b.jobs
            ));
        }
        o.push_str("\n],\n");

        o.push_str(&format!("\"{}\": [\n", names::keys::TENANTS));
        first = true;
        for (tenant, hist) in &self.tenant_sojourn {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            let q = |p: f64| hist.quantile(p).map(num).unwrap_or_else(|| "null".into());
            let slo_misses = self.tenant_slo_misses.get(tenant).copied().unwrap_or(0);
            o.push_str(&format!(
                "{{\"tenant\": {}, \"jobs\": {}, \"slo_misses\": {slo_misses}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json_string(tenant),
                hist.total(),
                q(0.5),
                q(0.95),
                q(0.99)
            ));
        }
        o.push_str("\n],\n");

        o.push_str(&format!(
            "\"{}\": {{\"jain\": {}, \"shares_observed\": {}, \"preemptions\": {}, \"preempt_wasted_s\": {}, \"rejections\": {}}},\n",
            names::keys::FAIRNESS,
            self.jain_index().map(num).unwrap_or_else(|| "null".into()),
            self.share_n,
            self.tenant_preemptions,
            num(self.tenant_preempt_wasted_s),
            self.tenant_rejections
        ));

        if !self.route_serve.is_empty() {
            o.push_str(&format!("\"{}\": {{", names::keys::ROUTE_SERVE));
            first = true;
            for (op, n) in &self.route_serve {
                if !first {
                    o.push(',');
                }
                first = false;
                o.push_str(&format!("{}: {n}", json_string(op)));
            }
            o.push_str("},\n");
        }

        o.push_str(&format!("\"{}\": {{", names::keys::RESOURCES));
        first = true;
        for (res, bytes) in &self.resource_bytes {
            if !first {
                o.push(',');
            }
            first = false;
            o.push_str(&format!("{}: {}", json_string(res), num(*bytes)));
        }
        o.push_str("}\n}\n");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes;

    fn feed_one_job(sink: &mut OnlineAggregator, id: u32, ratio: f64, cluster: &str) {
        let t0 = SimTime::from_secs(10 * id as u64);
        let t1 = t0 + SimDuration::from_secs(8);
        sink.span(
            "job",
            &format!("grep#{id}"),
            lanes::JOBS,
            id,
            t0,
            t1,
            &[
                ("app", "grep".into()),
                ("cluster", cluster.into()),
                ("ratio", ratio.into()),
                ("io_wait", 1_000_000u64.into()),
            ],
        );
        let b1 = t0 + SimDuration::from_secs(1);
        let b2 = t0 + SimDuration::from_secs(6);
        let b3 = t0 + SimDuration::from_secs(7);
        for (nm, s, e) in [
            ("setup", t0, b1),
            ("map", b1, b2),
            ("shuffle", b2, b3),
            ("reduce", b3, t1),
        ] {
            sink.span("phase", nm, lanes::JOBS, id, s, e, &[]);
        }
    }

    #[test]
    fn job_spans_feed_latency_and_critical_path() {
        let mut agg = OnlineAggregator::new(TelemetryConfig::default());
        agg.name_process(0, "cluster/scale-up");
        feed_one_job(&mut agg, 1, 1.6, "scale-up");
        feed_one_job(&mut agg, 2, 0.1, "scale-out");
        agg.finish(SimTime::from_secs(30));

        assert_eq!(agg.jobs_seen(), 2);
        assert!(agg.latency.contains_key(&("S/I>1", "scale-up".to_string())));
        assert!(agg
            .latency
            .contains_key(&("S/I<0.4", "scale-out".to_string())));
        // Map phase (5 s) dominates both jobs.
        let b = agg.blame.get(&("S/I>1", "map")).expect("blamed on map");
        assert_eq!(b.jobs, 1);
        assert!((b.seconds - 8.0).abs() < 1e-9);
        assert_eq!(agg.footprint().pending_jobs, 0);
    }

    #[test]
    fn recalibrate_instants_drive_crosspoint_gauges_and_bounded_notes() {
        let mut agg = OnlineAggregator::new(TelemetryConfig {
            max_recal_notes: 3,
            ..Default::default()
        });
        for i in 0..5u64 {
            agg.instant(
                "scheduler",
                "recalibrate",
                lanes::JOBS,
                7,
                SimTime::from_secs(i),
                &[
                    ("band", "0.4<=S/I<=1".into()),
                    ("old_bytes", (16u64 << 30).into()),
                    ("new_bytes", ((16 + i) << 30).into()),
                    ("estimate_bytes", 1.9e10.into()),
                    ("note", format!("recalibrated step {i}").into()),
                ],
            );
        }
        agg.finish(SimTime::from_secs(10));

        // The gauge tracks the latest update; the counter tallies all.
        assert_eq!(
            agg.crosspoint_bytes.get("0.4<=S/I<=1").copied(),
            Some((20u64 << 30) as f64)
        );
        assert_eq!(agg.crosspoint_updates.get("0.4<=S/I<=1").copied(), Some(5));
        // Notes are a bounded ring of the most recent decisions.
        assert_eq!(agg.recal_notes.len(), 3);
        assert_eq!(agg.recal_notes.front().unwrap(), "recalibrated step 2");
        assert_eq!(agg.footprint().crosspoint_bands, 1);
        assert_eq!(agg.footprint().recal_notes, 3);

        let prom = agg.render_prometheus();
        assert!(prom.contains("hh_crosspoint_bytes{band=\"0.4<=S/I<=1\"} 21474836480"));
        assert!(prom.contains("hh_crosspoint_updates_total{band=\"0.4<=S/I<=1\"} 5"));
        let json = agg.render_json();
        assert!(json.contains("\"crosspoint\": ["));
        assert!(json.contains("\"updates\": 5"));
        assert!(json.contains("recalibrated step 4"));
        assert!(!json.contains("recalibrated step 1"), "old notes evicted");
    }

    #[test]
    fn utilization_integrates_counter_steps() {
        let mut agg = OnlineAggregator::new(TelemetryConfig::default());
        agg.counter("sched", "running_maps", 0, SimTime::from_secs(0), 2.0);
        agg.counter("sched", "running_maps", 0, SimTime::from_secs(10), 0.0);
        agg.finish(SimTime::from_secs(20));
        let track = agg.util.get(&(0, "map")).unwrap();
        let slot_ticks: f64 = track.busy.buckets().map(|(_, _, s)| s).sum();
        // 2 tasks for 10 s, then idle: 20 slot-seconds.
        assert!((slot_ticks / simcore::TICKS_PER_SEC as f64 - 20.0).abs() < 1e-6);
    }

    #[test]
    fn placement_audit_tallies_band_side_and_reason() {
        let mut agg = OnlineAggregator::new(TelemetryConfig::default());
        for i in 0..3u32 {
            agg.instant(
                "placement",
                "place:scale-up",
                lanes::JOBS,
                i,
                SimTime::ZERO,
                &[
                    ("band", "S/I<0.4".into()),
                    (
                        "note",
                        "rejected scale-out: input 1.00 GiB below cross point 10.00 GiB".into(),
                    ),
                ],
            );
        }
        assert_eq!(
            agg.placements.get(&("S/I<0.4".to_string(), "scale-up")),
            Some(&3)
        );
        assert_eq!(
            agg.rejections
                .get(&("S/I<0.4".to_string(), "rejected scale-out".to_string())),
            Some(&3)
        );
    }

    #[test]
    fn reason_tags_are_capped() {
        let mut agg = OnlineAggregator::new(TelemetryConfig {
            max_reason_tags: 2,
            ..Default::default()
        });
        for i in 0..5u32 {
            agg.instant(
                "placement",
                "place:scale-out",
                lanes::JOBS,
                i,
                SimTime::ZERO,
                &[
                    ("band", "b".into()),
                    ("note", format!("reason-{i}: detail").into()),
                ],
            );
        }
        assert!(agg.rejections.len() <= 3, "{:?}", agg.rejections);
        assert_eq!(
            agg.rejections
                .get(&("b".to_string(), "(other)".to_string())),
            Some(&3)
        );
    }

    #[test]
    fn exposition_is_deterministic_and_well_formed() {
        let build = || {
            let mut agg = OnlineAggregator::new(TelemetryConfig::default());
            agg.name_process(0, "cluster/scale-up");
            agg.counter("sched", "running_maps", 0, SimTime::from_secs(1), 1.0);
            feed_one_job(&mut agg, 7, 0.7, "scale-up");
            agg.instant(
                "fault",
                "node_crash",
                0,
                0,
                SimTime::from_secs(2),
                &[("node", 0u64.into())],
            );
            agg.finish(SimTime::from_secs(60));
            agg
        };
        let (a, b) = (build(), build());
        assert_eq!(a.render_prometheus(), b.render_prometheus());
        assert_eq!(a.render_json(), b.render_json());
        let prom = a.render_prometheus();
        assert!(prom.contains("hh_jobs_total 1"));
        assert!(prom.contains("hh_fault_events_total{kind=\"node_crash\"} 1"));
        assert!(prom.contains("band=\"0.4<=S/I<=1\""));
        let json = a.render_json();
        assert!(json.contains("\"schema\": \"hybrid-hadoop-telemetry/v1\""));
        assert!(json.contains("\"cluster\": \"scale-up\""));
        // Without a tenant dispatch the Prometheus text is tenant-free and
        // the JSON fairness block stays at its neutral defaults.
        assert!(!prom.contains("hh_tenant_"));
        assert!(json.contains("\"fairness\": {\"jain\": null, \"shares_observed\": 0"));
        // Same for the routing-service section: absent until route_serve
        // instants arrive, so replay expositions are unchanged.
        assert!(!prom.contains("hh_route_serve_"));
        assert!(!json.contains("\"route_serve\""));
    }

    fn tenant_complete(agg: &mut OnlineAggregator, tenant: u64, sojourn_s: f64, slo_miss: bool) {
        agg.instant(
            "tenant",
            "complete",
            lanes::JOBS,
            0,
            SimTime::from_secs(1),
            &[
                ("job", 0u64.into()),
                ("tenant", tenant.into()),
                ("queue", "interactive".into()),
                ("sojourn_s", sojourn_s.into()),
                ("slo_miss", slo_miss.into()),
            ],
        );
    }

    #[test]
    fn tenant_instants_feed_sojourn_slo_and_fairness() {
        let mut agg = OnlineAggregator::new(TelemetryConfig::default());
        tenant_complete(&mut agg, 3, 40.0, false);
        tenant_complete(&mut agg, 3, 90.0, true);
        tenant_complete(&mut agg, 11, 12.0, false);
        agg.instant(
            "tenant",
            "preempt",
            lanes::JOBS,
            0,
            SimTime::from_secs(5),
            &[("victim", 3u64.into()), ("wasted_s", 2.5.into())],
        );
        agg.instant(
            "tenant",
            "reject",
            lanes::JOBS,
            0,
            SimTime::from_secs(6),
            &[("tenant", 11u64.into())],
        );
        // Two equally-loaded unit-weight tenants: Jain must be exactly 1.
        for t in [3u64, 11] {
            agg.instant(
                "tenant",
                "share",
                lanes::JOBS,
                0,
                SimTime::from_secs(9),
                &[
                    ("tenant", t.into()),
                    ("weight", 1.0.into()),
                    ("usage_s", 50.0.into()),
                ],
            );
        }
        agg.finish(SimTime::from_secs(10));

        assert_eq!(agg.tenant_sojourn.get("t3").unwrap().total(), 2);
        assert_eq!(agg.tenant_sojourn.get("t11").unwrap().total(), 1);
        assert_eq!(agg.tenant_slo_misses.get("t3").copied(), Some(1));
        assert_eq!(agg.tenant_preemptions, 1);
        assert!((agg.tenant_preempt_wasted_s - 2.5).abs() < 1e-12);
        assert_eq!(agg.tenant_rejections, 1);
        assert!((agg.jain_index().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(agg.footprint().tenant_label_sets, 2);

        let prom = agg.render_prometheus();
        assert!(prom.contains("hh_tenant_jobs_total{tenant=\"t3\"} 2"));
        assert!(prom.contains("hh_tenant_slo_miss_total{tenant=\"t3\"} 1"));
        assert!(prom.contains("hh_tenant_preemptions_total 1"));
        assert!(prom.contains("hh_tenant_jain_fairness_index 1"));
        let json = agg.render_json();
        assert!(json.contains("\"tenant\": \"t3\", \"jobs\": 2, \"slo_misses\": 1"));
        assert!(json.contains("\"jain\": 1,"));
        assert!(json.contains("\"preempt_wasted_s\": 2.5"));
    }

    #[test]
    fn route_serve_instants_tally_per_op_and_render_conditionally() {
        let mut agg = OnlineAggregator::new(TelemetryConfig {
            max_reason_tags: 4,
            ..Default::default()
        });
        for (op, n) in [
            ("decision", 5u32),
            ("batch", 2),
            ("feedback", 3),
            ("snapshot_save", 1),
        ] {
            for _ in 0..n {
                agg.instant("route_serve", op, lanes::JOBS, 0, SimTime::ZERO, &[]);
            }
        }
        // A fifth distinct op overflows the cap into "(other)".
        agg.instant("route_serve", "surplus", lanes::JOBS, 0, SimTime::ZERO, &[]);
        agg.finish(SimTime::from_secs(1));

        assert_eq!(agg.route_serve.get("decision").copied(), Some(5));
        assert_eq!(agg.route_serve.get("batch").copied(), Some(2));
        assert_eq!(agg.route_serve.get("(other)").copied(), Some(1));
        assert_eq!(agg.footprint().route_serve_ops, 5);

        let prom = agg.render_prometheus();
        assert!(prom.contains("hh_route_serve_ops_total{op=\"decision\"} 5"));
        assert!(prom.contains("hh_route_serve_ops_total{op=\"snapshot_save\"} 1"));
        let json = agg.render_json();
        assert!(json.contains("\"route_serve\": {"));
        assert!(json.contains("\"feedback\": 3"));
    }

    /// Every metric family in [`names::ALL`] must appear — under exactly
    /// the constant's spelling — in the Prometheus text and the JSON
    /// documents of fully-fed sinks. Both renders call into the same
    /// constants, so a typo in either exposition fails here instead of
    /// silently forking the two.
    #[test]
    fn expositions_use_the_shared_name_table() {
        let mut agg = OnlineAggregator::new(TelemetryConfig::default());
        agg.name_process(0, "cluster/scale-up");
        agg.counter("sched", "running_maps", 0, SimTime::from_secs(1), 1.0);
        feed_one_job(&mut agg, 1, 0.7, "scale-up");
        agg.instant(
            "fault",
            "node_crash",
            0,
            0,
            SimTime::from_secs(2),
            &[("node", 0u64.into())],
        );
        agg.instant(
            "fault",
            "re_replicate",
            0,
            0,
            SimTime::from_secs(3),
            &[("bytes", 1e9.into())],
        );
        agg.instant(
            "placement",
            "place:scale-up",
            lanes::JOBS,
            1,
            SimTime::ZERO,
            &[
                ("band", "S/I>1".into()),
                ("note", "rejected scale-out: x".into()),
            ],
        );
        agg.instant(
            "scheduler",
            "recalibrate",
            lanes::JOBS,
            1,
            SimTime::from_secs(4),
            &[
                ("band", "S/I>1".into()),
                ("old_bytes", (16u64 << 30).into()),
                ("new_bytes", (17u64 << 30).into()),
            ],
        );
        agg.instant(
            "resource",
            "remote_storage",
            lanes::RESOURCES,
            0,
            SimTime::from_secs(5),
            &[("bytes_served", 1e8.into())],
        );
        tenant_complete(&mut agg, 3, 40.0, true);
        agg.instant(
            "tenant",
            "share",
            lanes::JOBS,
            0,
            SimTime::from_secs(9),
            &[
                ("tenant", 3u64.into()),
                ("weight", 1.0.into()),
                ("usage_s", 50.0.into()),
            ],
        );
        agg.instant(
            "route_serve",
            "decision",
            lanes::JOBS,
            0,
            SimTime::ZERO,
            &[],
        );
        agg.finish(SimTime::from_secs(60));

        let mut doctor = crate::Doctor::new(crate::DoctorConfig::default());
        let prom = agg.render_prometheus() + &doctor.render_prometheus();
        doctor.finish(SimTime::from_secs(60));
        let json = agg.render_json() + &doctor.render_incidents_json();
        for &(prom_name, json_key) in names::ALL {
            assert!(
                prom.contains(prom_name),
                "Prometheus exposition missing {prom_name}"
            );
            assert!(
                json.contains(&format!("\"{json_key}\"")),
                "JSON exposition missing key {json_key:?} (family {prom_name})"
            );
        }
    }

    /// Which tenants fold into `"(other)"` is a pure function of the event
    /// multiset: permuting arrival order (as windowed execution may) yields
    /// byte-identical expositions, with the smallest tenant ids named.
    #[test]
    fn other_bucket_membership_survives_arrival_permutation() {
        let run = |order: &[u64]| {
            let mut agg = OnlineAggregator::new(TelemetryConfig {
                max_tenant_sets: 2,
                ..Default::default()
            });
            for &t in order {
                tenant_complete(&mut agg, t, 10.0 + t as f64, t % 2 == 0);
            }
            agg.finish(SimTime::from_secs(100));
            (agg.render_prometheus(), agg.render_json())
        };
        let base_order = [0u64, 1, 2, 3, 4];
        let (prom, json) = run(&base_order);
        // Named slots go to the smallest ids; the rest land in "(other)".
        assert!(prom.contains("hh_tenant_jobs_total{tenant=\"t0\"} 1"));
        assert!(prom.contains("hh_tenant_jobs_total{tenant=\"t1\"} 1"));
        assert!(prom.contains("hh_tenant_jobs_total{tenant=\"(other)\"} 3"));
        assert!(!prom.contains("tenant=\"t2\""));
        for permuted in [[4u64, 3, 2, 1, 0], [2, 0, 4, 1, 3], [3, 4, 0, 2, 1]] {
            let (p, j) = run(&permuted);
            assert_eq!(prom, p, "membership changed under {permuted:?}");
            assert_eq!(json, j, "JSON changed under {permuted:?}");
        }
    }

    #[test]
    fn tenant_label_sets_are_capped() {
        let mut agg = OnlineAggregator::new(TelemetryConfig {
            max_tenant_sets: 2,
            ..Default::default()
        });
        for t in 0..5u64 {
            tenant_complete(&mut agg, t, 10.0, t >= 2);
        }
        // Tenants beyond the cap fold into "(other)" — both histograms and
        // SLO counters — so the footprint stays config-bounded.
        assert_eq!(agg.tenant_sojourn.len(), 3);
        assert_eq!(agg.tenant_sojourn.get("(other)").unwrap().total(), 3);
        assert_eq!(agg.tenant_slo_misses.get("(other)").copied(), Some(3));
        assert_eq!(agg.footprint().tenant_label_sets, 3);
    }
}
