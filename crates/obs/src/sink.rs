//! The telemetry sink abstraction the engine emits into.
//!
//! Instrumentation sites in the simulator do not talk to a concrete
//! [`Recorder`] — they broadcast every span, instant, and counter to a set
//! of [`TelemetrySink`]s. The buffering [`Recorder`] (full post-hoc trace,
//! Chrome export) is one implementation; the bounded-memory
//! [`OnlineAggregator`](crate::telemetry::OnlineAggregator) (streaming
//! Prometheus/JSON metrics) is another. Both are strictly passive: a sink
//! never feeds back into the simulation, so results are bitwise identical
//! with any combination of sinks attached.
//!
//! Argument lists are passed by slice — with several sinks attached no
//! single sink can own the `Vec`, and the aggregator never stores the args
//! at all.

use crate::{ArgValue, Recorder};
use simcore::SimTime;
use std::any::Any;

/// A consumer of instrumentation events, fed online as the engine emits.
///
/// Implementations must be deterministic functions of the event stream:
/// no wall clock, no randomness, no iteration over unordered containers
/// when rendering. The `Any` plumbing (`as_any` & co.) lets owners recover
/// a concrete sink from the trait object after a run.
pub trait TelemetrySink: Any {
    /// Consume a complete span covering `[start, end)`.
    #[allow(clippy::too_many_arguments)]
    fn span(
        &mut self,
        cat: &'static str,
        name: &str,
        pid: u32,
        tid: u32,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, ArgValue)],
    );

    /// Consume an instant marker at `ts`.
    fn instant(
        &mut self,
        cat: &'static str,
        name: &str,
        pid: u32,
        tid: u32,
        ts: SimTime,
        args: &[(&'static str, ArgValue)],
    );

    /// Consume a counter sample: `name` takes `value` at `ts` on lane `pid`.
    fn counter(&mut self, cat: &'static str, name: &'static str, pid: u32, ts: SimTime, value: f64);

    /// Learn a human-readable name for a `pid` lane.
    fn name_process(&mut self, pid: u32, name: &str);

    /// Whether this sink consumes flow spans. The engine only enables flow
    /// logging in the network when some attached sink answers `true`, so an
    /// aggregator-only run skips the per-flow bookkeeping entirely.
    fn wants_flows(&self) -> bool {
        false
    }

    /// Whether this sink consumes per-task-attempt spans (`cat == "task"`).
    /// The engine skips formatting and broadcasting them when no attached
    /// sink answers `true` — at replay scale they dominate the event count,
    /// and an aggregator-only run derives everything it needs from the
    /// job/phase spans and scheduler counters.
    fn wants_tasks(&self) -> bool {
        false
    }

    /// Called once when the simulation finishes, with the final simulated
    /// time — the hook for closing open accumulation windows.
    fn finish(&mut self, _now: SimTime) {}

    /// Borrow as [`Any`] for concrete-type recovery.
    fn as_any(&self) -> &dyn Any;

    /// Mutably borrow as [`Any`] for concrete-type recovery.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Convert the box for by-value concrete-type recovery.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl TelemetrySink for Recorder {
    fn span(
        &mut self,
        cat: &'static str,
        name: &str,
        pid: u32,
        tid: u32,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, ArgValue)],
    ) {
        Recorder::span(self, cat, name, pid, tid, start, end, args.to_vec());
    }

    fn instant(
        &mut self,
        cat: &'static str,
        name: &str,
        pid: u32,
        tid: u32,
        ts: SimTime,
        args: &[(&'static str, ArgValue)],
    ) {
        Recorder::instant(self, cat, name, pid, tid, ts, args.to_vec());
    }

    fn counter(
        &mut self,
        cat: &'static str,
        name: &'static str,
        pid: u32,
        ts: SimTime,
        value: f64,
    ) {
        Recorder::counter(self, cat, name, pid, ts, value);
    }

    fn name_process(&mut self, pid: u32, name: &str) {
        Recorder::name_process(self, pid, name);
    }

    fn wants_flows(&self) -> bool {
        true
    }

    fn wants_tasks(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_as_sink_buffers_identically_to_direct_calls() {
        let mut direct = Recorder::new();
        direct.span(
            "t",
            "s",
            0,
            1,
            SimTime(5),
            SimTime(9),
            vec![("k", 1u64.into())],
        );
        direct.counter("c", "n", 2, SimTime(7), 3.5);
        direct.name_process(0, "p");

        let mut via: Box<dyn TelemetrySink> = Box::new(Recorder::new());
        via.span(
            "t",
            "s",
            0,
            1,
            SimTime(5),
            SimTime(9),
            &[("k", 1u64.into())],
        );
        via.counter("c", "n", 2, SimTime(7), 3.5);
        via.name_process(0, "p");
        let via = via.into_any().downcast::<Recorder>().unwrap();
        assert_eq!(*via, direct);
    }

    #[test]
    fn recorder_wants_flows_and_tasks() {
        assert!(Recorder::new().wants_flows());
        assert!(Recorder::new().wants_tasks());
    }
}
