//! Per-job phase-breakdown exporter.
//!
//! Projects a recorded trace onto the paper's unit of analysis: for each
//! job, how long did setup / map / shuffle / reduce take, what was the
//! median task duration in each phase, and how much of the task time was
//! spent waiting on storage and network IO. The engine emits phase spans
//! with monotonically clamped boundaries, so the four phases of a job
//! always sum exactly to its execution time in integer ticks.
//!
//! Consumed by the `fig5` and `fault_sweep` experiment binaries, which print
//! these tables alongside their figures.

use crate::{EventKind, Recorder};
use simcore::SimDuration;
use std::collections::BTreeMap;

/// One job's phase decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPhaseRow {
    /// Job id (the `tid` of its spans on the jobs lane).
    pub job: u64,
    /// Application profile name ("grep", "sort", ...).
    pub app: String,
    /// Cluster the job ran on ("scale-up" / "scale-out").
    pub cluster: String,
    /// Submission-to-first-map wait (queueing + setup).
    pub setup: SimDuration,
    /// First map start to last map end.
    pub map: SimDuration,
    /// Last map end to last shuffle fetch done.
    pub shuffle: SimDuration,
    /// Shuffle done to job completion.
    pub reduce: SimDuration,
    /// Whole-job execution; equals `setup + map + shuffle + reduce` exactly.
    pub execution: SimDuration,
    /// Median successful map-attempt duration.
    pub map_task_p50: SimDuration,
    /// Median successful reduce-attempt duration.
    pub reduce_task_p50: SimDuration,
    /// Total ticks the job's successful attempts spent blocked on IO.
    pub io_wait: SimDuration,
}

/// The phase table for every completed job in a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// One row per job, ordered by job id.
    pub rows: Vec<JobPhaseRow>,
}

impl PhaseBreakdown {
    /// Build the table from a recorded trace. Jobs appear when their
    /// `cat: "job"` span exists; phase and task spans fill in the columns.
    pub fn from_recorder(rec: &Recorder) -> Self {
        struct Acc {
            app: String,
            cluster: String,
            execution: SimDuration,
            phases: [SimDuration; 4],
            map_tasks: Vec<SimDuration>,
            reduce_tasks: Vec<SimDuration>,
            io_wait: SimDuration,
        }
        let mut jobs: BTreeMap<u64, Acc> = BTreeMap::new();
        // Pass 1: job spans establish the rows. Task spans are recorded as
        // attempts finish — i.e. *before* their job's span — so row creation
        // must not depend on event order.
        for ev in rec.events() {
            if ev.kind != EventKind::Span || ev.cat != "job" {
                continue;
            }
            let acc = jobs.entry(ev.tid as u64).or_insert_with(|| Acc {
                app: String::new(),
                cluster: String::new(),
                execution: SimDuration::ZERO,
                phases: [SimDuration::ZERO; 4],
                map_tasks: Vec::new(),
                reduce_tasks: Vec::new(),
                io_wait: SimDuration::ZERO,
            });
            acc.app = ev.arg_str("app").unwrap_or("?").to_string();
            acc.cluster = ev.arg_str("cluster").unwrap_or("?").to_string();
            acc.execution = ev.dur;
        }
        // Pass 2: phase and task spans fill in the columns.
        for ev in rec.events() {
            if ev.kind != EventKind::Span {
                continue;
            }
            match ev.cat {
                "phase" => {
                    let slot = match ev.name.as_str() {
                        "setup" => 0,
                        "map" => 1,
                        "shuffle" => 2,
                        "reduce" => 3,
                        _ => continue,
                    };
                    if let Some(acc) = jobs.get_mut(&(ev.tid as u64)) {
                        acc.phases[slot] = ev.dur;
                    }
                }
                "task" => {
                    // Only attempts that finished cleanly count toward task
                    // medians; killed/failed attempts still show in the trace.
                    if ev.arg_str("outcome") != Some("ok") {
                        continue;
                    }
                    let Some(job) = ev.arg_u64("job") else {
                        continue;
                    };
                    let Some(acc) = jobs.get_mut(&job) else {
                        continue;
                    };
                    match ev.arg_str("kind") {
                        Some("map") => acc.map_tasks.push(ev.dur),
                        Some("reduce") => acc.reduce_tasks.push(ev.dur),
                        _ => {}
                    }
                    acc.io_wait += SimDuration(ev.arg_u64("io_wait").unwrap_or(0));
                }
                _ => {}
            }
        }
        let rows = jobs
            .into_iter()
            .map(|(job, mut acc)| JobPhaseRow {
                job,
                app: acc.app,
                cluster: acc.cluster,
                setup: acc.phases[0],
                map: acc.phases[1],
                shuffle: acc.phases[2],
                reduce: acc.phases[3],
                execution: acc.execution,
                map_task_p50: median(&mut acc.map_tasks),
                reduce_task_p50: median(&mut acc.reduce_tasks),
                io_wait: acc.io_wait,
            })
            .collect();
        PhaseBreakdown { rows }
    }

    /// Render the per-job table as Markdown (durations in seconds).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("| job | app | cluster | setup s | map s | shuffle s | reduce s | exec s | map-task p50 s | reduce-task p50 s | io-wait s |\n");
        out.push_str("|---|---|---|---|---|---|---|---|---|---|---|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                r.job,
                r.app,
                r.cluster,
                secs(r.setup),
                secs(r.map),
                secs(r.shuffle),
                secs(r.reduce),
                secs(r.execution),
                secs(r.map_task_p50),
                secs(r.reduce_task_p50),
                secs(r.io_wait),
            ));
        }
        out
    }

    /// Machine-readable CSV export: same columns as [`render`](Self::render),
    /// durations in seconds with millisecond precision, one header row.
    /// App/cluster fields are quoted when they contain a comma, quote, or
    /// newline (RFC 4180 style).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "job,app,cluster,setup_s,map_s,shuffle_s,reduce_s,exec_s,map_task_p50_s,reduce_task_p50_s,io_wait_s\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                r.job,
                csv_field(&r.app),
                csv_field(&r.cluster),
                secs(r.setup),
                secs(r.map),
                secs(r.shuffle),
                secs(r.reduce),
                secs(r.execution),
                secs(r.map_task_p50),
                secs(r.reduce_task_p50),
                secs(r.io_wait),
            ));
        }
        out
    }

    /// One-line median summary across all jobs, for sweep-style reports
    /// where the full per-job table would drown the figure.
    pub fn summary(&self) -> String {
        let mut map: Vec<SimDuration> = self.rows.iter().map(|r| r.map).collect();
        let mut shuffle: Vec<SimDuration> = self.rows.iter().map(|r| r.shuffle).collect();
        let mut reduce: Vec<SimDuration> = self.rows.iter().map(|r| r.reduce).collect();
        let mut io: Vec<SimDuration> = self.rows.iter().map(|r| r.io_wait).collect();
        format!(
            "{} jobs · median phase s: map {} / shuffle {} / reduce {} · median io-wait s {}",
            self.rows.len(),
            secs(median(&mut map)),
            secs(median(&mut shuffle)),
            secs(median(&mut reduce)),
            secs(median(&mut io)),
        )
    }
}

/// Median by sorting in place; `ZERO` for an empty set. Lower median for
/// even counts, matching the golden-trace percentile convention.
fn median(xs: &mut [SimDuration]) -> SimDuration {
    if xs.is_empty() {
        return SimDuration::ZERO;
    }
    xs.sort_unstable();
    xs[(xs.len() - 1) / 2]
}

fn secs(d: SimDuration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Quote a CSV field only when it needs it.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes;
    use simcore::SimTime;

    fn sample() -> Recorder {
        let mut r = Recorder::new();
        // Task attempts are recorded as they finish, i.e. before their job's
        // span — the sample reproduces that real emission order.
        for (start, end, io) in [(10u64, 40u64, 4u64), (12, 60, 6)] {
            r.span(
                "task",
                "map",
                0,
                0,
                SimTime(start),
                SimTime(end),
                vec![
                    ("job", 5u64.into()),
                    ("kind", "map".into()),
                    ("outcome", "ok".into()),
                    ("io_wait", io.into()),
                ],
            );
        }
        // A killed speculative attempt must not affect medians or io-wait.
        r.span(
            "task",
            "map",
            0,
            1,
            SimTime(12),
            SimTime(30),
            vec![
                ("job", 5u64.into()),
                ("kind", "map".into()),
                ("outcome", "killed".into()),
                ("io_wait", 99u64.into()),
            ],
        );
        // Job 5: submit at 0, end at 100; phases 10 + 50 + 25 + 15.
        r.span(
            "job",
            "grep#5",
            lanes::JOBS,
            5,
            SimTime(0),
            SimTime(100),
            vec![("app", "grep".into()), ("cluster", "scale-up".into())],
        );
        r.span(
            "phase",
            "setup",
            lanes::JOBS,
            5,
            SimTime(0),
            SimTime(10),
            vec![],
        );
        r.span(
            "phase",
            "map",
            lanes::JOBS,
            5,
            SimTime(10),
            SimTime(60),
            vec![],
        );
        r.span(
            "phase",
            "shuffle",
            lanes::JOBS,
            5,
            SimTime(60),
            SimTime(85),
            vec![],
        );
        r.span(
            "phase",
            "reduce",
            lanes::JOBS,
            5,
            SimTime(85),
            SimTime(100),
            vec![],
        );
        r
    }

    #[test]
    fn phases_sum_to_execution() {
        let b = PhaseBreakdown::from_recorder(&sample());
        assert_eq!(b.rows.len(), 1);
        let r = &b.rows[0];
        assert_eq!(r.job, 5);
        assert_eq!(r.app, "grep");
        assert_eq!(r.cluster, "scale-up");
        assert_eq!(r.setup + r.map + r.shuffle + r.reduce, r.execution);
        assert_eq!(r.execution, SimDuration(100));
    }

    #[test]
    fn task_medians_skip_killed_attempts() {
        let b = PhaseBreakdown::from_recorder(&sample());
        let r = &b.rows[0];
        // Durations 30 and 48; lower median = 30. io_wait = 4 + 6, not 109.
        assert_eq!(r.map_task_p50, SimDuration(30));
        assert_eq!(r.io_wait, SimDuration(10));
        assert_eq!(r.reduce_task_p50, SimDuration::ZERO);
    }

    #[test]
    fn render_and_summary_are_deterministic() {
        let a = PhaseBreakdown::from_recorder(&sample());
        let b = PhaseBreakdown::from_recorder(&sample());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.summary(), b.summary());
        assert!(
            a.render().contains("| 5 | grep | scale-up |"),
            "{}",
            a.render()
        );
        assert!(a.summary().starts_with("1 jobs"), "{}", a.summary());
    }

    #[test]
    fn csv_matches_the_rendered_table() {
        let b = PhaseBreakdown::from_recorder(&sample());
        let csv = b.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "job,app,cluster,setup_s,map_s,shuffle_s,reduce_s,exec_s,map_task_p50_s,reduce_task_p50_s,io_wait_s"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("5,grep,scale-up,"), "{row}");
        assert_eq!(row.split(',').count(), 11);
        assert_eq!(lines.next(), None);
        assert_eq!(b.to_csv(), csv, "deterministic");
    }

    #[test]
    fn csv_quotes_awkward_fields() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
