//! # obs — deterministic observability for the simulator
//!
//! A structured trace recorder keyed on [`SimTime`] — never wall clock — so
//! two runs of the same `(specification, seed)` produce **byte-identical**
//! traces. The recorder is entirely passive: it never touches the event
//! queue, draws no randomness, and is allocated only when a caller opts in,
//! so a simulation with observability disabled is bitwise identical to one
//! that never linked this crate.
//!
//! ## Span model
//!
//! Three event shapes, mirroring the Chrome `trace_event` phases they export
//! to:
//!
//! - **Complete spans** (`ph: "X"`): a named interval `[ts, ts + dur)` on a
//!   `(pid, tid)` lane — task attempts, job phases, storage flows.
//! - **Instant events** (`ph: "i"`): point-in-time markers — node crashes,
//!   speculative kills, placement decisions.
//! - **Counters** (`ph: "C"`): a named value sampled at an instant — running
//!   tasks per cluster, queue depths.
//!
//! Lanes follow a fixed convention (see [`lanes`]): compute clusters use
//! their cluster index as `pid` with the node index as `tid`; job-scoped
//! events live under [`lanes::JOBS`] with the job id as `tid`; flows and
//! storage servers get their own processes. [`Recorder::name_process`]
//! attaches human-readable names that Perfetto shows in the track list.
//!
//! ## Determinism contract
//!
//! Events are stored in emission order and exported verbatim; no sorting,
//! hashing, or timestamping happens at export. Because the simulator itself
//! is deterministic and every `ts` is integer microseconds of simulated
//! time, the rendered JSON is a pure function of the simulation inputs.
//!
//! ## Exporters
//!
//! - [`chrome::render`] — Chrome `trace_event` JSON, loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! - [`breakdown::PhaseBreakdown`] — per-job map/shuffle/reduce/IO-wait
//!   tables derived from the recorded spans.
//!
//! ## Streaming telemetry
//!
//! The buffering recorder is one implementation of the [`TelemetrySink`]
//! trait the engine broadcasts into. The other shipped sink is
//! [`telemetry::OnlineAggregator`], which folds the same event stream into
//! bounded-memory aggregates (utilization timelines, latency histograms,
//! fault counters, placement audit, critical-path attribution) and renders
//! them as Prometheus text or a JSON snapshot — the measurement path that
//! scales to million-job replays where buffering every span cannot.

pub mod breakdown;
pub mod chrome;
pub mod doctor;
pub mod sink;
pub mod telemetry;

pub use doctor::{Doctor, DoctorConfig, Incident};
pub use sink::TelemetrySink;
pub use telemetry::{OnlineAggregator, TelemetryConfig, TelemetryFootprint};

use simcore::{SimDuration, SimTime};

/// Fixed `pid` lanes for event groups that are not compute clusters.
/// Compute clusters use their cluster index (0, 1, ...) as `pid`, which is
/// why these constants start well above any realistic cluster count.
pub mod lanes {
    /// Job-scoped spans (job lifecycle, phases, placement): `tid` = job id.
    pub const JOBS: u32 = 1000;
    /// Storage/network flow spans: `tid` = flow id (truncated).
    pub const FLOWS: u32 = 2000;
    /// Remote storage servers (degradation events): `tid` = server index.
    pub const STORAGE: u32 = 2001;
    /// Per-resource utilization summaries emitted at end of run.
    pub const RESOURCES: u32 = 2002;
}

/// A typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument (escaped on export).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A float, exported with shortest-roundtrip formatting.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for ArgValue {
    fn from(s: &str) -> Self {
        ArgValue::Str(s.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(s: String) -> Self {
        ArgValue::Str(s)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// The shape of a trace event (maps to a Chrome `ph` value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span (`ph: "X"`) with a duration.
    Span,
    /// An instant marker (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`); the value is the `value` arg.
    Counter,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span label, marker name, or counter name).
    pub name: String,
    /// Category, used for filtering in trace viewers and by the breakdown
    /// exporter ("task", "phase", "job", "flow", "fault", "placement", ...).
    pub cat: &'static str,
    /// Span, instant, or counter.
    pub kind: EventKind,
    /// Start (spans) or occurrence (instants/counters) time.
    pub ts: SimTime,
    /// Span duration; zero for instants and counters.
    pub dur: SimDuration,
    /// Process lane (cluster index or a [`lanes`] constant).
    pub pid: u32,
    /// Thread lane within the process (node index, job id, flow id...).
    pub tid: u32,
    /// Key-value annotations, exported as the Chrome `args` object.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// The first argument with key `key`, if any.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// The first `u64` argument with key `key`, if any.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        match self.arg(key) {
            Some(ArgValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The first string argument with key `key`, if any.
    pub fn arg_str(&self, key: &str) -> Option<&str> {
        match self.arg(key) {
            Some(ArgValue::Str(s)) => Some(s),
            _ => None,
        }
    }
}

/// The recorder: an append-only, emission-ordered event log.
///
/// Owners hold it behind an `Option` so the disabled path is a single branch
/// and no allocation; every recording method is a plain `Vec::push`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    events: Vec<TraceEvent>,
    /// `(pid, name)` process labels, exported as Chrome metadata events.
    process_names: Vec<(u32, String)>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Record a complete span covering `[start, end)`. A span whose `end`
    /// precedes `start` is clamped to zero duration rather than rejected
    /// (saturating, like all simulator time arithmetic).
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        cat: &'static str,
        name: impl Into<String>,
        pid: u32,
        tid: u32,
        start: SimTime,
        end: SimTime,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Span,
            ts: start,
            dur: end.since(start),
            pid,
            tid,
            args,
        });
    }

    /// Record an instant marker at `ts`.
    pub fn instant(
        &mut self,
        cat: &'static str,
        name: impl Into<String>,
        pid: u32,
        tid: u32,
        ts: SimTime,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Instant,
            ts,
            dur: SimDuration::ZERO,
            pid,
            tid,
            args,
        });
    }

    /// Record a counter sample: `name` takes `value` at `ts` on lane `pid`.
    pub fn counter(
        &mut self,
        cat: &'static str,
        name: impl Into<String>,
        pid: u32,
        ts: SimTime,
        value: f64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Counter,
            ts,
            dur: SimDuration::ZERO,
            pid,
            tid: 0,
            args: vec![("value", ArgValue::F64(value))],
        });
    }

    /// Attach a human-readable name to a `pid` lane (shown by Perfetto).
    pub fn name_process(&mut self, pid: u32, name: impl Into<String>) {
        self.process_names.push((pid, name.into()));
    }

    /// All recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Registered process names.
    pub fn process_names(&self) -> &[(u32, String)] {
        &self.process_names
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one category, in emission order.
    pub fn by_category<'a>(&'a self, cat: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.cat == cat)
    }

    /// Render the whole log as Chrome `trace_event` JSON.
    pub fn chrome_trace(&self) -> String {
        chrome::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_durations_saturate() {
        let mut r = Recorder::new();
        r.span(
            "t",
            "backwards",
            0,
            0,
            SimTime::from_secs(5),
            SimTime::from_secs(3),
            vec![],
        );
        assert_eq!(r.events()[0].dur, SimDuration::ZERO);
    }

    #[test]
    fn events_keep_emission_order() {
        let mut r = Recorder::new();
        r.instant("a", "later", 0, 0, SimTime::from_secs(9), vec![]);
        r.instant("a", "earlier", 0, 0, SimTime::from_secs(1), vec![]);
        let names: Vec<&str> = r.events().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["later", "earlier"],
            "no sorting on record or export"
        );
    }

    #[test]
    fn arg_lookup_by_key_and_type() {
        let mut r = Recorder::new();
        r.instant(
            "t",
            "e",
            0,
            0,
            SimTime::ZERO,
            vec![("job", 7u64.into()), ("app", "grep".into())],
        );
        let e = &r.events()[0];
        assert_eq!(e.arg_u64("job"), Some(7));
        assert_eq!(e.arg_str("app"), Some("grep"));
        assert_eq!(e.arg_u64("app"), None, "type-checked accessors");
        assert_eq!(e.arg("missing"), None);
    }

    #[test]
    fn counters_carry_their_value_as_an_arg() {
        let mut r = Recorder::new();
        r.counter("sched", "running_maps", 0, SimTime::from_secs(1), 12.0);
        let e = &r.events()[0];
        assert_eq!(e.kind, EventKind::Counter);
        assert_eq!(e.arg("value"), Some(&ArgValue::F64(12.0)));
    }

    #[test]
    fn category_filter() {
        let mut r = Recorder::new();
        r.instant("fault", "crash", 0, 0, SimTime::ZERO, vec![]);
        r.instant("task", "x", 0, 0, SimTime::ZERO, vec![]);
        r.instant("fault", "recover", 0, 0, SimTime::ZERO, vec![]);
        assert_eq!(r.by_category("fault").count(), 2);
        assert_eq!(r.by_category("task").count(), 1);
    }
}
