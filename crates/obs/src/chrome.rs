//! Chrome `trace_event` JSON exporter.
//!
//! Renders a [`Recorder`] log into the JSON Object Format understood by
//! `chrome://tracing` and <https://ui.perfetto.dev>: a `traceEvents` array
//! of objects with `ph` (phase) `"X"` (complete span), `"i"` (instant),
//! `"C"` (counter), or `"M"` (metadata). `ts`/`dur` are microseconds, which
//! matches the simulator's tick unit exactly, so trace timestamps *are*
//! `SimTime` values with no conversion loss.
//!
//! Output is deterministic: fixed field order, one event per line, events
//! in emission order, and numbers rendered with Rust's shortest-roundtrip
//! `Display` — no wall-clock, locale, or hash-order dependence anywhere.

use crate::{ArgValue, EventKind, Recorder, TraceEvent};

/// Render the full recorder log as a Chrome-trace JSON document.
pub fn render(rec: &Recorder) -> String {
    // ~160 bytes/event is a fair estimate for typical spans with 2-3 args.
    let mut out = String::with_capacity(64 + rec.len() * 160);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for (pid, name) in rec.process_names() {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":{}}}}}",
            pid,
            json_string(name)
        ));
    }
    for ev in rec.events() {
        push_sep(&mut out, &mut first);
        push_event(&mut out, ev);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

fn push_event(out: &mut String, ev: &TraceEvent) {
    out.push('{');
    out.push_str("\"name\":");
    out.push_str(&json_string(&ev.name));
    out.push_str(",\"cat\":");
    out.push_str(&json_string(ev.cat));
    match ev.kind {
        EventKind::Span => {
            out.push_str(&format!(
                ",\"ph\":\"X\",\"ts\":{},\"dur\":{}",
                ev.ts.0, ev.dur.0
            ));
        }
        EventKind::Instant => {
            // Scope "t" (thread) keeps the marker on its own lane.
            out.push_str(&format!(",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}", ev.ts.0));
        }
        EventKind::Counter => {
            out.push_str(&format!(",\"ph\":\"C\",\"ts\":{}", ev.ts.0));
        }
    }
    out.push_str(&format!(",\"pid\":{},\"tid\":{}", ev.pid, ev.tid));
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push(':');
            push_value(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

fn push_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::Str(s) => out.push_str(&json_string(s)),
        ArgValue::U64(n) => out.push_str(&n.to_string()),
        ArgValue::F64(f) if f.is_finite() => out.push_str(&f.to_string()),
        ArgValue::F64(_) => out.push_str("null"),
        ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;

    fn sample() -> Recorder {
        let mut r = Recorder::new();
        r.name_process(crate::lanes::JOBS, "jobs");
        r.span(
            "phase",
            "map",
            crate::lanes::JOBS,
            3,
            SimTime(10),
            SimTime(250),
            vec![("job", 3u64.into())],
        );
        r.instant(
            "fault",
            "node_crash",
            0,
            2,
            SimTime(40),
            vec![("node", 2u64.into()), ("note", "line\"break\n".into())],
        );
        r.counter("sched", "running_maps", 0, SimTime(41), 7.0);
        r
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(render(&sample()), render(&sample()));
    }

    #[test]
    fn render_shape() {
        let json = render(&sample());
        assert!(json.starts_with("{\"traceEvents\":[\n"), "{json}");
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}\n"), "{json}");
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1000,\"tid\":0,\"args\":{\"name\":\"jobs\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"map\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":10,\"dur\":240,\"pid\":1000,\"tid\":3,\"args\":{\"job\":3}}"
        ));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":40"));
        assert!(json.contains("\"ph\":\"C\",\"ts\":41"), "{json}");
        assert!(
            json.contains("\"args\":{\"value\":7}"),
            "counter value: {json}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let json = render(&sample());
        assert!(json.contains("\"note\":\"line\\\"break\\n\""), "{json}");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut out = String::new();
        push_value(&mut out, &ArgValue::F64(f64::NAN));
        push_value(&mut out, &ArgValue::F64(f64::INFINITY));
        assert_eq!(out, "nullnull");
    }
}
