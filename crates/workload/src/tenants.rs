//! # tenants — a heavy-traffic multi-tenant arrival model
//!
//! Extends the FB-2009 re-synthesis ([`crate::facebook`]) from "one
//! anonymous queue of jobs" to "thousands of tenants sharing a cluster",
//! the regime the multi-tenant scheduler comparisons (Fair vs. Capacity
//! vs. FIFO on YARN) study. Three things change:
//!
//! * **who submits** — a Zipf-activity tenant population: a few tenants
//!   dominate submissions, a long tail submits rarely. Each tenant
//!   belongs to one of three hierarchical queues (interactive / batch /
//!   analytics) with its own size scale, shuffle-ratio mix, SLO, and
//!   fair-share weight, so per-tenant job size and shuffle mixes differ
//!   the way production orgs' do;
//! * **when they submit** — the Poisson base process is modulated by a
//!   deterministic **diurnal envelope** (sinusoidal day/night rate swing,
//!   mean-normalized so total volume is preserved) *times* the existing
//!   MMPP burst regimes, reproducing both the daily cycle and the
//!   short-range burstiness of production traces;
//! * **what flows downstream** — the stream yields
//!   [`TenantJob`]s (spec + tenant id) and builds
//!   the matching [`TenantTable`] for the
//!   dispatcher, so the whole path from arrival to release is driven by
//!   one config.
//!
//! ## Determinism
//!
//! Like the base generator, the stream is a pure function of its config:
//! disjoint [`DetRng`] substreams per concern (sizes = 1, ratios = 2,
//! arrivals = 3, bursts = 4, tenant picks = 5, table build = 6), a fixed
//! number of draws per job in a fixed order (burst epoch advance →
//! interarrival → tenant pick → size → ratio), and a diurnal factor that
//! is a closed-form function of the arrival clock (no draws). Two streams
//! from equal configs yield bitwise-equal `TenantJob`s on any host — the
//! property the byte-identical `tenant_sweep` tables rest on.

use crate::apps;
use crate::facebook::{input_size_distribution, sample_ratio_weighted, BurstModel};
use mapreduce::{JobId, JobSpec};
use scheduler::{QueueSpec, TenantId, TenantJob, TenantSpec, TenantTable};
use simcore::dist::{exponential, PiecewiseLogCdf};
use simcore::rng::{substream, DetRng};
use simcore::{SimDuration, SimTime};

/// Deterministic day/night arrival-rate envelope: the instantaneous rate
/// is multiplied by `1 + amplitude * sin(2π·t/period)`. The sinusoid has
/// zero mean over a full period, so the long-run job volume matches the
/// un-modulated process.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalModel {
    /// One full day/night cycle.
    pub period: SimDuration,
    /// Peak-to-mean rate swing, in `[0, 1)`.
    pub amplitude: f64,
}

impl Default for DiurnalModel {
    fn default() -> Self {
        DiurnalModel {
            period: SimDuration::from_secs(24 * 3600),
            amplitude: 0.6,
        }
    }
}

impl DiurnalModel {
    /// The rate multiplier at trace time `t` seconds.
    pub fn factor(&self, t: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t / self.period.as_secs_f64();
        1.0 + self.amplitude * phase.sin()
    }
}

/// The three tenant classes, each mapped to one hierarchical queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TenantClass {
    /// Small ad-hoc queries under a tight SLO.
    Interactive,
    /// The bread-and-butter ETL mass; no SLO.
    Batch,
    /// Shuffle-heavy aggregation pipelines under a loose SLO.
    Analytics,
}

impl TenantClass {
    /// Deterministic class assignment by tenant index: 30 % interactive,
    /// 50 % batch, 20 % analytics, interleaved so every prefix of the
    /// population keeps roughly the same mix.
    fn of(index: usize) -> Self {
        match index % 10 {
            0..=2 => TenantClass::Interactive,
            3..=7 => TenantClass::Batch,
            _ => TenantClass::Analytics,
        }
    }

    fn queue(self) -> usize {
        match self {
            TenantClass::Interactive => 0,
            TenantClass::Batch => 1,
            TenantClass::Analytics => 2,
        }
    }

    /// Multiplier applied to the Figure-3 size draw for this class's jobs.
    fn size_scale(self) -> f64 {
        match self {
            TenantClass::Interactive => 0.02,
            TenantClass::Batch => 1.0,
            TenantClass::Analytics => 2.0,
        }
    }

    /// Shuffle-ratio band weights (map-intensive, moderate, shuffle-heavy).
    fn ratio_weights(self) -> [f64; 3] {
        match self {
            TenantClass::Interactive => [0.70, 0.25, 0.05],
            TenantClass::Batch => [0.50, 0.35, 0.15],
            TenantClass::Analytics => [0.20, 0.30, 0.50],
        }
    }

    fn slo_secs(self) -> Option<f64> {
        match self {
            TenantClass::Interactive => Some(300.0),
            TenantClass::Batch => None,
            TenantClass::Analytics => Some(4.0 * 3600.0),
        }
    }

    fn base_weight(self) -> f64 {
        match self {
            TenantClass::Interactive => 2.0,
            TenantClass::Batch => 1.0,
            TenantClass::Analytics => 1.5,
        }
    }
}

/// Configuration of the multi-tenant trace. A pure function of this value
/// (all RNG state derives from `seed`).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantModelConfig {
    /// Total jobs across all tenants.
    pub jobs: usize,
    /// RNG seed for every substream.
    pub seed: u64,
    /// Tenant population size ("thousands of tenants").
    pub tenants: usize,
    /// Zipf activity exponent: submission share of tenant rank `r` decays
    /// as `1/(r+1)^s`. 0 = uniform, ~1 = realistically skewed.
    pub zipf_exponent: f64,
    /// Arrival window (drives the base Poisson rate `jobs / window`).
    pub window: SimDuration,
    /// Divide all data sizes by this (paper §V shrink).
    pub shrink_factor: f64,
    /// MMPP burst regimes; `None` = no short-range burstiness.
    pub bursts: Option<BurstModel>,
    /// Day/night envelope; `None` = flat.
    pub diurnal: Option<DiurnalModel>,
}

impl Default for TenantModelConfig {
    fn default() -> Self {
        TenantModelConfig {
            jobs: 6000,
            seed: 0x7E4A_2009,
            tenants: 2000,
            zipf_exponent: 1.1,
            window: SimDuration::from_secs(8 * 3600),
            shrink_factor: 5.0,
            bursts: Some(BurstModel::default()),
            diurnal: Some(DiurnalModel::default()),
        }
    }
}

/// Build the tenant population the stream draws from: class-derived queue
/// membership, SLOs and size/ratio mixes, plus a per-tenant weight jitter
/// (drawn once from substream 6) so fair shares are not uniform inside a
/// class.
pub fn tenant_table(cfg: &TenantModelConfig) -> TenantTable {
    assert!(cfg.tenants > 0, "at least one tenant");
    let mut build_rng = substream(cfg.seed, 6);
    let tenants = (0..cfg.tenants)
        .map(|i| {
            let class = TenantClass::of(i);
            // Discrete weight jitter: most tenants at the class base, a
            // few contractual heavyweights at 2x / 4x.
            let jitter = match build_rng.range_usize(0, 8) {
                0 => 2.0,
                1 => 4.0,
                _ => 1.0,
            };
            TenantSpec {
                id: TenantId(i as u32),
                weight: class.base_weight() * jitter,
                queue: class.queue(),
                slo_secs: class.slo_secs(),
            }
        })
        .collect();
    TenantTable {
        queues: vec![
            QueueSpec {
                name: "interactive",
                capacity: 0.30,
            },
            QueueSpec {
                name: "batch",
                capacity: 0.50,
            },
            QueueSpec {
                name: "analytics",
                capacity: 0.20,
            },
        ],
        tenants,
    }
}

/// Materialize the whole multi-tenant trace (see [`stream`]).
pub fn generate(cfg: &TenantModelConfig) -> Vec<TenantJob> {
    stream(cfg).collect()
}

/// Lazily generate the multi-tenant trace: `cfg.jobs` [`TenantJob`]s in
/// nondecreasing submit order, O(tenants) memory, byte-reproducible.
pub fn stream(cfg: &TenantModelConfig) -> TenantStream {
    assert!(cfg.jobs > 0, "empty trace requested");
    assert!(cfg.shrink_factor >= 1.0, "shrink factor must be ≥ 1");
    assert!(
        cfg.zipf_exponent >= 0.0 && cfg.zipf_exponent.is_finite(),
        "zipf exponent must be finite and non-negative"
    );
    if let Some(d) = &cfg.diurnal {
        assert!(
            (0.0..1.0).contains(&d.amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
    }
    // Zipf activity CDF over tenant ranks (tenant id = rank here: the
    // population is already ordered most- to least-active).
    let mut cum = Vec::with_capacity(cfg.tenants);
    let mut acc = 0.0;
    for i in 0..cfg.tenants {
        acc += 1.0 / ((i + 1) as f64).powf(cfg.zipf_exponent);
        cum.push(acc);
    }
    TenantStream {
        sizes: input_size_distribution(),
        size_rng: substream(cfg.seed, 1),
        ratio_rng: substream(cfg.seed, 2),
        arrival_rng: substream(cfg.seed, 3),
        burst_rng: substream(cfg.seed, 4),
        tenant_rng: substream(cfg.seed, 5),
        bursts: cfg.bursts.clone(),
        diurnal: cfg.diurnal.clone(),
        tenant_cdf: cum,
        classes: (0..cfg.tenants).map(TenantClass::of).collect(),
        mean_interarrival: cfg.window.as_secs_f64() / cfg.jobs as f64,
        shrink_factor: cfg.shrink_factor,
        t: 0.0,
        epoch_end: 0.0,
        factor: 1.0,
        produced: 0,
        total: cfg.jobs,
    }
}

/// The lazy generator behind [`stream`].
#[derive(Debug, Clone)]
pub struct TenantStream {
    sizes: PiecewiseLogCdf,
    size_rng: DetRng,
    ratio_rng: DetRng,
    arrival_rng: DetRng,
    burst_rng: DetRng,
    tenant_rng: DetRng,
    bursts: Option<BurstModel>,
    diurnal: Option<DiurnalModel>,
    /// Cumulative (unnormalized) Zipf weights; binary-searched per pick.
    tenant_cdf: Vec<f64>,
    classes: Vec<TenantClass>,
    mean_interarrival: f64,
    shrink_factor: f64,
    t: f64,
    epoch_end: f64,
    factor: f64,
    produced: usize,
    total: usize,
}

impl TenantStream {
    /// Jobs not yet drawn.
    pub fn remaining(&self) -> usize {
        self.total - self.produced
    }

    fn pick_tenant(&mut self) -> usize {
        let total = *self.tenant_cdf.last().expect("non-empty population");
        let u = self.tenant_rng.f64() * total;
        // First index whose cumulative weight exceeds u.
        match self.tenant_cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.tenant_cdf.len() - 1),
            Err(i) => i.min(self.tenant_cdf.len() - 1),
        }
    }
}

impl Iterator for TenantStream {
    type Item = TenantJob;

    fn next(&mut self) -> Option<TenantJob> {
        if self.produced == self.total {
            return None;
        }
        // Fixed draw order per job; see the module docs.
        if let Some(bursts) = &self.bursts {
            while self.t >= self.epoch_end {
                self.factor = bursts.sample_factor(&mut self.burst_rng);
                self.epoch_end += bursts.epoch.as_secs_f64();
            }
        }
        let diurnal = self.diurnal.as_ref().map_or(1.0, |d| d.factor(self.t));
        let rate = (self.factor * diurnal).max(1e-6);
        self.t += exponential(&mut self.arrival_rng, self.mean_interarrival / rate);
        let tenant = self.pick_tenant();
        let class = self.classes[tenant];
        let raw = self.sizes.sample(&mut self.size_rng) * class.size_scale();
        let size = (raw / self.shrink_factor).max(1.0) as u64;
        let ratio = sample_ratio_weighted(&mut self.ratio_rng, &class.ratio_weights());
        let id = JobId(self.produced as u32);
        self.produced += 1;
        Some(TenantJob {
            spec: JobSpec {
                id,
                profile: apps::synthetic(ratio),
                input_size: size,
                submit: SimTime::from_secs_f64(self.t),
            },
            tenant: TenantId(tenant as u32),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for TenantStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_cfg() -> TenantModelConfig {
        TenantModelConfig {
            jobs: 2000,
            tenants: 500,
            ..TenantModelConfig::default()
        }
    }

    #[test]
    fn stream_is_byte_reproducible() {
        let cfg = small_cfg();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.tenant, y.tenant);
        }
    }

    #[test]
    fn clone_mid_stream_resumes_identically() {
        let cfg = small_cfg();
        let mut s = stream(&cfg);
        for _ in 0..700 {
            s.next().unwrap();
        }
        let fork = s.clone();
        let rest_a: Vec<_> = s.collect();
        let rest_b: Vec<_> = fork.collect();
        assert_eq!(rest_a.len(), rest_b.len());
        for (x, y) in rest_a.iter().zip(&rest_b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.tenant, y.tenant);
        }
    }

    #[test]
    fn submits_are_nondecreasing_and_ids_sequential() {
        let cfg = small_cfg();
        let mut last = SimTime::ZERO;
        for (i, j) in stream(&cfg).enumerate() {
            assert_eq!(j.spec.id.0 as usize, i);
            assert!(j.spec.submit >= last);
            last = j.spec.submit;
        }
    }

    #[test]
    fn tenant_activity_is_zipf_skewed_and_in_range() {
        let cfg = small_cfg();
        let table = tenant_table(&cfg);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for j in stream(&cfg) {
            assert!((j.tenant.0 as usize) < cfg.tenants);
            *counts.entry(j.tenant.0).or_default() += 1;
        }
        // Zipf head: the most active tenant dominates the median one.
        let top = counts.get(&0).copied().unwrap_or(0);
        assert!(
            top >= cfg.jobs / 20,
            "tenant 0 should be a heavy hitter, got {top}/{}",
            cfg.jobs
        );
        // The long tail exists: many distinct tenants submit.
        assert!(counts.len() > 50, "only {} tenants active", counts.len());
        // Every active tenant resolves in the table.
        for t in counts.keys() {
            assert!(table.spec(TenantId(*t)).weight > 0.0);
        }
    }

    #[test]
    fn class_mixes_differ_per_queue() {
        let cfg = small_cfg();
        let table = tenant_table(&cfg);
        // Mean input size per queue: interactive << batch < analytics.
        let mut sums = [0.0f64; 3];
        let mut ns = [0u64; 3];
        for j in stream(&cfg) {
            let q = table.spec(j.tenant).queue;
            sums[q] += j.spec.input_size as f64;
            ns[q] += 1;
        }
        let mean = |q: usize| sums[q] / ns[q].max(1) as f64;
        assert!(ns.iter().all(|&n| n > 0), "all queues see traffic: {ns:?}");
        assert!(mean(0) < mean(1), "interactive jobs smaller than batch");
        assert!(mean(1) < mean(2), "analytics jobs largest");
    }

    #[test]
    fn diurnal_envelope_modulates_arrivals() {
        // With a strong diurnal swing and no bursts, more jobs land in the
        // first half-period (rate > 1) than in the second (rate < 1).
        let cfg = TenantModelConfig {
            jobs: 4000,
            tenants: 100,
            window: SimDuration::from_secs(24 * 3600),
            bursts: None,
            diurnal: Some(DiurnalModel {
                period: SimDuration::from_secs(24 * 3600),
                amplitude: 0.8,
            }),
            ..TenantModelConfig::default()
        };
        let half = 12.0 * 3600.0;
        let (mut first, mut second) = (0u64, 0u64);
        for j in stream(&cfg) {
            if j.spec.submit.as_secs_f64() < half {
                first += 1;
            } else {
                second += 1;
            }
        }
        assert!(
            first > second + second / 4,
            "diurnal peak half should dominate: {first} vs {second}"
        );
    }

    #[test]
    fn diurnal_factor_is_mean_normalized() {
        let d = DiurnalModel::default();
        let period = d.period.as_secs_f64();
        let n = 10_000;
        let mean = (0..n)
            .map(|i| d.factor(period * i as f64 / n as f64))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 1e-3, "mean factor {mean}");
    }

    #[test]
    fn table_build_is_deterministic_and_weights_jittered() {
        let cfg = small_cfg();
        let a = tenant_table(&cfg);
        let b = tenant_table(&cfg);
        assert_eq!(a.tenants.len(), b.tenants.len());
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.weight, y.weight);
            assert_eq!(x.queue, y.queue);
        }
        // The jitter actually fires: not all same-class weights equal.
        let batch: Vec<f64> = a
            .tenants
            .iter()
            .filter(|t| t.queue == 1)
            .map(|t| t.weight)
            .collect();
        assert!(batch.iter().any(|w| *w != batch[0]));
    }
}
