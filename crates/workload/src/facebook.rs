//! Synthesis of an FB-2009-like workload trace.
//!
//! The paper replays "the Facebook synthesized workload trace FB-2009" —
//! itself a *synthetic* trace (SWIM) published as statistics, not raw logs.
//! We re-synthesize from the distribution the paper publishes in Figure 3:
//!
//! > "the input data size ranges from KB to TB. Specifically, 40% of the
//! > jobs process less than 1MB small datasets, 49% of the jobs process 1MB
//! > to 30GB median datasets, and the rest 11% of the jobs process more
//! > than 30GB large datasets"
//!
//! and applies the paper's §V adjustments: ">6000 jobs", "we shrank the
//! input/shuffle/output data size of the workload by a factor of 5", jobs
//! replayed "based on the job arrival time in the traces" (modelled as a
//! Poisson process over the trace window).

use crate::apps;
use mapreduce::{JobId, JobProfile, JobSpec};
use simcore::dist::{exponential, PiecewiseLogCdf};
use simcore::fault::{FaultPlan, NodeFault, NodeFaultKind};
use simcore::rng::{substream, DetRng};
use simcore::{SimDuration, SimTime};

/// Configuration of the synthetic FB-2009 trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FacebookTraceConfig {
    /// Number of jobs ("more than 6000 jobs" in the paper).
    pub jobs: usize,
    /// RNG seed; the trace is a pure function of this config.
    pub seed: u64,
    /// Length of the arrival window.
    pub window: SimDuration,
    /// Divide all data sizes by this ("shrank ... by a factor of 5").
    pub shrink_factor: f64,
    /// Arrival burstiness; `None` gives a plain Poisson process.
    pub bursts: Option<BurstModel>,
    /// Mid-trace shuffle-mix drift; `None` keeps the mix stationary.
    pub band_shift: Option<BandMixShift>,
}

/// A scheduled mid-trace change of the shuffle/input ratio mix: from the
/// shift instant on, jobs draw their ratio band from `weights` instead of
/// the stationary FB-2009 mix. Sizes and arrival times come from separate
/// RNG substreams and are untouched, and each draw consumes the same number
/// of ratio-stream samples as the stationary path, so the pre-shift prefix
/// of the trace is bitwise identical to the unshifted trace.
#[derive(Debug, Clone, PartialEq)]
pub struct BandMixShift {
    /// When (in trace time) the new mix takes effect.
    pub at: SimDuration,
    /// Relative weights for the three Algorithm-1 bands, in order
    /// `[map-intensive (<0.4), moderate (0.4..=1.0), shuffle-heavy (>1)]`.
    /// They are normalized internally; `[0.50, 0.35, 0.15]` reproduces the
    /// stationary mix exactly.
    pub weights: [f64; 3],
}

/// Deterministic mid-trace loss of compute nodes: `nodes` machines of one
/// sub-cluster crash at `at` and never recover — the drift analogue of one
/// side's effective service rate dropping for the rest of the replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLoss {
    /// When the nodes crash.
    pub at: SimDuration,
    /// Cluster index within the deployment (0 = scale-up in the hybrid).
    pub cluster: usize,
    /// How many nodes (indices `0..nodes`) crash.
    pub nodes: usize,
}

/// A named drifting-workload scenario: an optional shuffle-mix shift in the
/// trace plus an optional node-loss fault plan. Both pieces are fully
/// deterministic, so a scenario replay is a pure function of the trace
/// config and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftScenario {
    /// Scenario label for tables and telemetry.
    pub name: &'static str,
    /// Shuffle-mix drift applied to the trace, if any.
    pub band_shift: Option<BandMixShift>,
    /// Compute-node loss injected into the replay, if any.
    pub node_loss: Option<NodeLoss>,
}

impl DriftScenario {
    /// No drift at all: the stationary baseline scenario.
    pub fn stationary() -> Self {
        DriftScenario {
            name: "stationary",
            band_shift: None,
            node_loss: None,
        }
    }

    /// Half the scale-up side dies at `at` and stays dead: one of the two
    /// scale-up machines crashes, halving that side's service rate for the
    /// rest of the replay.
    pub fn scale_up_slowdown(at: SimDuration) -> Self {
        DriftScenario {
            name: "scale-up-slowdown",
            band_shift: None,
            node_loss: Some(NodeLoss {
                at,
                cluster: 0,
                nodes: 1,
            }),
        }
    }

    /// The workload turns shuffle-heavy at `at`: the band mix flips from
    /// mostly map-intensive to mostly aggregation-like jobs.
    pub fn shuffle_mix_shift(at: SimDuration) -> Self {
        DriftScenario {
            name: "shuffle-mix-shift",
            band_shift: Some(BandMixShift {
                at,
                weights: [0.20, 0.30, 0.50],
            }),
            node_loss: None,
        }
    }

    /// Both drifts at once: the workload turns shuffle-heavy *and* half the
    /// scale-up side dies at `at` — the hardest case for a static cross
    /// point, since the load shifts toward the side that just shrank.
    pub fn combined(at: SimDuration) -> Self {
        DriftScenario {
            name: "combined-drift",
            band_shift: Some(BandMixShift {
                at,
                weights: [0.20, 0.30, 0.50],
            }),
            node_loss: Some(NodeLoss {
                at,
                cluster: 0,
                nodes: 1,
            }),
        }
    }

    /// The four standard scenarios of the drift sweep, stationary first.
    pub fn all(at: SimDuration) -> Vec<Self> {
        vec![
            Self::stationary(),
            Self::scale_up_slowdown(at),
            Self::shuffle_mix_shift(at),
            Self::combined(at),
        ]
    }

    /// The trace config for this scenario: `base` with the scenario's band
    /// shift (if any) installed.
    pub fn trace_config(&self, base: &FacebookTraceConfig) -> FacebookTraceConfig {
        FacebookTraceConfig {
            band_shift: self.band_shift.clone(),
            ..base.clone()
        }
    }

    /// The fault plan for this scenario: crash events for the node loss (no
    /// recovery), or the empty plan. Replaying the empty plan is bitwise
    /// identical to replaying without fault injection.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::empty();
        if let Some(loss) = &self.node_loss {
            for node in 0..loss.nodes {
                plan.node_events.push(NodeFault {
                    at: SimTime(loss.at.0),
                    cluster: loss.cluster,
                    node,
                    kind: NodeFaultKind::Crash,
                });
            }
        }
        plan
    }
}

/// A Markov-modulated Poisson arrival process: the instantaneous rate is
/// the base rate times a factor redrawn every `epoch`. Production MapReduce
/// arrivals are strongly bursty/diurnal (Chen et al.), and the burst
/// periods are what put monster jobs and latency-sensitive small jobs in
/// the same FIFO queue on a traditional shared cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstModel {
    /// How long one rate regime lasts.
    pub epoch: SimDuration,
    /// `(probability weight, rate multiplier)` regimes; multipliers are
    /// renormalized so the long-run mean rate matches `jobs / window`.
    pub regimes: Vec<(f64, f64)>,
}

impl Default for BurstModel {
    fn default() -> Self {
        BurstModel {
            epoch: SimDuration::from_secs(600),
            // Half the time quiet, a third nominal, a sixth in a burst.
            regimes: vec![(0.5, 0.3), (0.33, 1.0), (0.17, 5.0)],
        }
    }
}

impl BurstModel {
    /// Mean multiplier across regimes (for normalization).
    fn mean_factor(&self) -> f64 {
        let total_w: f64 = self.regimes.iter().map(|&(w, _)| w).sum();
        self.regimes.iter().map(|&(w, f)| w * f).sum::<f64>() / total_w
    }

    /// Draw a normalized rate factor for one epoch.
    pub(crate) fn sample_factor(&self, rng: &mut DetRng) -> f64 {
        let total_w: f64 = self.regimes.iter().map(|&(w, _)| w).sum();
        let mut u: f64 = rng.f64() * total_w;
        for &(w, f) in &self.regimes {
            if u < w {
                return f / self.mean_factor();
            }
            u -= w;
        }
        self.regimes.last().expect("regimes non-empty").1 / self.mean_factor()
    }
}

impl Default for FacebookTraceConfig {
    fn default() -> Self {
        FacebookTraceConfig {
            jobs: 6000,
            seed: 2009,
            // Chosen so the 24-node baselines run at the utilization the
            // paper's measured sojourns imply (minutes-long tails): the
            // original trace drove a 600-machine cluster, so replaying it
            // on 24 machines keeps them under sustained pressure.
            window: SimDuration::from_secs(8 * 3600),
            shrink_factor: 5.0,
            bursts: Some(BurstModel::default()),
            band_shift: None,
        }
    }
}

/// The Figure 3 input-size distribution (bytes), anchored on the published
/// band fractions: 40 % below 1 MB, 49 % between 1 MB and 30 GB, 11 % above
/// 30 GB, with KB–TB support.
pub fn input_size_distribution() -> PiecewiseLogCdf {
    PiecewiseLogCdf::new(vec![
        (1.0e3, 0.00),   // 1 KB floor
        (1.0e6, 0.40),   // 40 % < 1 MB
        (1.0e8, 0.66),   // intra-band shaping: most medium jobs are tens of
        (1.0e9, 0.79),   //   MB (Chen et al.: production MapReduce jobs are
        (1.0e10, 0.86),  //   overwhelmingly small), with a multi-GB tail
        (3.0e10, 0.89),  // 89 % ≤ 30 GB
        (1.0e11, 0.955), // a real monster tail: the TB-scale jobs whose map
        (3.0e11, 0.99),  //   floods block FIFO queues on shared clusters
        (1.0e12, 1.00),  // 1 TB ceiling
    ])
}

/// Draw the shuffle/input ratio class for one job. FB-2009 is dominated by
/// map-only/ingest jobs, with a substantial aggregation tail; the mix keeps
/// the three classes of the paper's Algorithm 1 all populated.
pub(crate) fn sample_ratio(rng: &mut DetRng) -> f64 {
    let u: f64 = rng.f64();
    if u < 0.50 {
        // Map-intensive (ratio < 0.4): filters, loads, ETL projections.
        rng.range_f64(0.0, 0.35)
    } else if u < 0.85 {
        // Moderate shuffle (0.4..=1.0): joins, grep-like scans.
        rng.range_f64(0.4, 1.0)
    } else {
        // Shuffle-heavy (>1): aggregations, wordcount-like expansions.
        rng.range_f64(1.1, 2.2)
    }
}

/// [`sample_ratio`] with explicit band weights (normalized internally).
/// Consumes exactly the same number of RNG draws per call as the stationary
/// path, so switching mid-stream never desynchronizes the ratio substream.
pub(crate) fn sample_ratio_weighted(rng: &mut DetRng, weights: &[f64; 3]) -> f64 {
    let total: f64 = weights.iter().sum();
    let u: f64 = rng.f64() * total;
    if u < weights[0] {
        rng.range_f64(0.0, 0.35)
    } else if u < weights[0] + weights[1] {
        rng.range_f64(0.4, 1.0)
    } else {
        rng.range_f64(1.1, 2.2)
    }
}

/// Generate the trace: `jobs` [`JobSpec`]s sorted by submission time.
///
/// Ids are assigned in arrival order starting at 0. This materializes the
/// whole trace; for million-job replays prefer [`stream`], which yields the
/// identical jobs one at a time.
pub fn generate(cfg: &FacebookTraceConfig) -> Vec<JobSpec> {
    stream(cfg).collect()
}

/// Lazily generate the trace of [`generate`]: the same jobs, in the same
/// order, from the same RNG substreams, but drawn on demand so a million-job
/// trace never needs a million [`JobSpec`]s in memory at once.
///
/// The iterator is [`ExactSizeIterator`]; [`TraceStream::next_chunk`] drains
/// it a bounded window at a time for chunked pipelines.
pub fn stream(cfg: &FacebookTraceConfig) -> TraceStream {
    assert!(cfg.jobs > 0, "empty trace requested");
    assert!(cfg.shrink_factor >= 1.0, "shrink factor must be ≥ 1");
    if let Some(shift) = &cfg.band_shift {
        assert!(
            shift.weights.iter().all(|w| w.is_finite() && *w >= 0.0)
                && shift.weights.iter().sum::<f64>() > 0.0,
            "band-shift weights must be non-negative with a positive sum"
        );
    }
    TraceStream {
        sizes: input_size_distribution(),
        size_rng: substream(cfg.seed, 1),
        ratio_rng: substream(cfg.seed, 2),
        arrival_rng: substream(cfg.seed, 3),
        burst_rng: substream(cfg.seed, 4),
        bursts: cfg.bursts.clone(),
        band_shift: cfg.band_shift.clone(),
        mean_interarrival: cfg.window.as_secs_f64() / cfg.jobs as f64,
        shrink_factor: cfg.shrink_factor,
        t: 0.0,
        epoch_end: 0.0,
        factor: 1.0,
        produced: 0,
        total: cfg.jobs,
    }
}

/// The lazy trace generator behind [`stream`]. Holds only the RNG substream
/// cursors and the arrival-process state — O(1) memory regardless of trace
/// length.
#[derive(Debug, Clone)]
pub struct TraceStream {
    sizes: PiecewiseLogCdf,
    size_rng: DetRng,
    ratio_rng: DetRng,
    arrival_rng: DetRng,
    burst_rng: DetRng,
    bursts: Option<BurstModel>,
    band_shift: Option<BandMixShift>,
    mean_interarrival: f64,
    shrink_factor: f64,
    t: f64,
    epoch_end: f64,
    factor: f64,
    produced: usize,
    total: usize,
}

impl TraceStream {
    /// Jobs not yet drawn.
    pub fn remaining(&self) -> usize {
        self.total - self.produced
    }

    /// Draw up to `max` further jobs (fewer only at end of trace). The
    /// returned window is the only materialized portion of the trace.
    pub fn next_chunk(&mut self, max: usize) -> Vec<JobSpec> {
        let n = max.min(self.remaining());
        let mut chunk = Vec::with_capacity(n);
        chunk.extend(self.by_ref().take(n));
        chunk
    }
}

impl Iterator for TraceStream {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        if self.produced == self.total {
            return None;
        }
        // Advance through rate regimes; interarrivals scale inversely with
        // the current regime's rate factor.
        if let Some(bursts) = &self.bursts {
            while self.t >= self.epoch_end {
                self.factor = bursts.sample_factor(&mut self.burst_rng);
                self.epoch_end += bursts.epoch.as_secs_f64();
            }
        }
        self.t += exponential(&mut self.arrival_rng, self.mean_interarrival / self.factor);
        let raw = self.sizes.sample(&mut self.size_rng);
        let size = (raw / self.shrink_factor).max(1.0) as u64;
        let ratio = match &self.band_shift {
            Some(shift) if self.t >= shift.at.as_secs_f64() => {
                sample_ratio_weighted(&mut self.ratio_rng, &shift.weights)
            }
            _ => sample_ratio(&mut self.ratio_rng),
        };
        let id = JobId(self.produced as u32);
        self.produced += 1;
        Some(JobSpec {
            id,
            profile: apps::synthetic(ratio),
            input_size: size,
            submit: SimTime::from_secs_f64(self.t),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for TraceStream {}

/// Serialize a trace to JSON (one self-contained document, one job object
/// per line). Floats are written in shortest-roundtrip form and submission
/// times as raw microsecond ticks, so [`from_json`] restores the trace
/// bit-for-bit.
pub fn to_json(specs: &[JobSpec]) -> String {
    let mut out = String::from("[\n");
    for (i, s) in specs.iter().enumerate() {
        let p = &s.profile;
        out.push_str("  {");
        out.push_str(&format!("\"id\": {}, ", s.id.0));
        out.push_str(&format!("\"input_size\": {}, ", s.input_size));
        out.push_str(&format!("\"submit_ticks\": {}, ", s.submit.0));
        out.push_str(&format!("\"name\": {}, ", json_string(&p.name)));
        out.push_str(&format!(
            "\"map_cycles_per_byte\": {:?}, ",
            p.map_cycles_per_byte
        ));
        out.push_str(&format!(
            "\"reduce_cycles_per_byte\": {:?}, ",
            p.reduce_cycles_per_byte
        ));
        out.push_str(&format!(
            "\"shuffle_input_ratio\": {:?}, ",
            p.shuffle_input_ratio
        ));
        out.push_str(&format!(
            "\"output_input_ratio\": {:?}, ",
            p.output_input_ratio
        ));
        out.push_str(&format!("\"maps_read_input\": {}, ", p.maps_read_input));
        out.push_str(&format!("\"maps_write_output\": {}, ", p.maps_write_output));
        match p.fixed_reduces {
            Some(r) => out.push_str(&format!("\"fixed_reduces\": {r}")),
            None => out.push_str("\"fixed_reduces\": null"),
        }
        out.push('}');
        if i + 1 < specs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Load a trace back from JSON produced by [`to_json`]. Field order within
/// each job object does not matter; unknown fields are rejected.
///
/// # Errors
/// Returns a description of the first malformed construct.
pub fn from_json(json: &str) -> Result<Vec<JobSpec>, String> {
    let mut p = JsonCursor {
        b: json.as_bytes(),
        i: 0,
    };
    p.ws();
    p.expect(b'[')?;
    let mut specs = Vec::new();
    p.ws();
    if p.peek() == Some(b']') {
        return Ok(specs);
    }
    loop {
        specs.push(parse_job(&mut p)?);
        p.ws();
        match p.next() {
            Some(b',') => p.ws(),
            Some(b']') => break,
            other => return Err(format!("expected ',' or ']' after job, got {other:?}")),
        }
    }
    Ok(specs)
}

fn parse_job(p: &mut JsonCursor<'_>) -> Result<JobSpec, String> {
    p.expect(b'{')?;
    let mut id = None;
    let mut input_size = None;
    let mut submit_ticks = None;
    let mut name = None;
    let mut map_cpb = None;
    let mut reduce_cpb = None;
    let mut shuffle_ratio = None;
    let mut output_ratio = None;
    let mut maps_read = None;
    let mut maps_write = None;
    let mut fixed_reduces = None;
    loop {
        p.ws();
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match key.as_str() {
            "id" => id = Some(p.number()?.parse::<u32>().map_err(|e| e.to_string())?),
            "input_size" => {
                input_size = Some(p.number()?.parse::<u64>().map_err(|e| e.to_string())?)
            }
            "submit_ticks" => {
                submit_ticks = Some(p.number()?.parse::<u64>().map_err(|e| e.to_string())?)
            }
            "name" => name = Some(p.string()?),
            "map_cycles_per_byte" => map_cpb = Some(p.f64()?),
            "reduce_cycles_per_byte" => reduce_cpb = Some(p.f64()?),
            "shuffle_input_ratio" => shuffle_ratio = Some(p.f64()?),
            "output_input_ratio" => output_ratio = Some(p.f64()?),
            "maps_read_input" => maps_read = Some(p.bool()?),
            "maps_write_output" => maps_write = Some(p.bool()?),
            "fixed_reduces" => {
                fixed_reduces = Some(if p.keyword("null") {
                    None
                } else {
                    Some(p.number()?.parse::<u32>().map_err(|e| e.to_string())?)
                })
            }
            other => return Err(format!("unknown trace field {other:?}")),
        }
        p.ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            other => return Err(format!("expected ',' or '}}' in job, got {other:?}")),
        }
    }
    let miss = |f: &str| format!("missing trace field {f:?}");
    Ok(JobSpec {
        id: JobId(id.ok_or_else(|| miss("id"))?),
        input_size: input_size.ok_or_else(|| miss("input_size"))?,
        submit: SimTime(submit_ticks.ok_or_else(|| miss("submit_ticks"))?),
        profile: JobProfile {
            name: name.ok_or_else(|| miss("name"))?,
            map_cycles_per_byte: map_cpb.ok_or_else(|| miss("map_cycles_per_byte"))?,
            reduce_cycles_per_byte: reduce_cpb.ok_or_else(|| miss("reduce_cycles_per_byte"))?,
            shuffle_input_ratio: shuffle_ratio.ok_or_else(|| miss("shuffle_input_ratio"))?,
            output_input_ratio: output_ratio.ok_or_else(|| miss("output_input_ratio"))?,
            maps_read_input: maps_read.ok_or_else(|| miss("maps_read_input"))?,
            maps_write_output: maps_write.ok_or_else(|| miss("maps_write_output"))?,
            fixed_reduces: fixed_reduces.ok_or_else(|| miss("fixed_reduces"))?,
        },
    })
}

/// A byte cursor with just enough JSON parsing for the trace schema.
struct JsonCursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonCursor<'_> {
    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn keyword(&mut self, word: &str) -> bool {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            true
        } else {
            false
        }
    }

    fn bool(&mut self) -> Result<bool, String> {
        if self.keyword("true") {
            Ok(true)
        } else if self.keyword("false") {
            Ok(false)
        } else {
            Err("expected a boolean".into())
        }
    }

    fn number(&mut self) -> Result<&str, String> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        if self.i == start {
            return Err("expected a number".into());
        }
        std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())
    }

    fn f64(&mut self) -> Result<f64, String> {
        self.number()?.parse::<f64>().map_err(|e| e.to_string())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        if self.i + 4 > self.b.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                            .map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        self.i += 4;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(_) => {
                    // Multi-byte UTF-8: re-decode from the byte before.
                    let rest =
                        std::str::from_utf8(&self.b[self.i - 1..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("truncated UTF-8")?;
                    out.push(c);
                    self.i += c.len_utf8() - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_fractions_match_figure_3() {
        let cfg = FacebookTraceConfig {
            shrink_factor: 1.0,
            ..Default::default()
        };
        let specs = generate(&cfg);
        let n = specs.len() as f64;
        let small = specs.iter().filter(|s| s.input_size < 1_000_000).count() as f64 / n;
        let large = specs
            .iter()
            .filter(|s| s.input_size > 30_000_000_000)
            .count() as f64
            / n;
        let median = 1.0 - small - large;
        assert!((small - 0.40).abs() < 0.03, "small band {small}");
        assert!((median - 0.49).abs() < 0.03, "median band {median}");
        assert!((large - 0.11).abs() < 0.03, "large band {large}");
    }

    #[test]
    fn shrink_divides_sizes() {
        let base = FacebookTraceConfig {
            shrink_factor: 1.0,
            ..Default::default()
        };
        let shrunk = FacebookTraceConfig::default(); // 5×
        let a = generate(&base);
        let b = generate(&shrunk);
        let mean_a: f64 = a.iter().map(|s| s.input_size as f64).sum::<f64>() / a.len() as f64;
        let mean_b: f64 = b.iter().map(|s| s.input_size as f64).sum::<f64>() / b.len() as f64;
        assert!(
            (mean_a / mean_b - 5.0).abs() < 0.1,
            "ratio {}",
            mean_a / mean_b
        );
    }

    #[test]
    fn arrivals_are_sorted_and_span_the_window() {
        let specs = generate(&FacebookTraceConfig::default());
        assert!(specs.windows(2).all(|w| w[0].submit <= w[1].submit));
        let last = specs.last().unwrap().submit.as_secs_f64();
        let window = FacebookTraceConfig::default().window.as_secs_f64();
        assert!(
            last > 0.5 * window && last < 1.5 * window,
            "last arrival {last}"
        );
    }

    #[test]
    fn trace_is_deterministic_in_seed() {
        let cfg = FacebookTraceConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = FacebookTraceConfig { seed: 7, ..cfg };
        assert_ne!(generate(&other), generate(&FacebookTraceConfig::default()));
    }

    #[test]
    fn all_ratio_classes_are_populated() {
        let specs = generate(&FacebookTraceConfig::default());
        let low = specs
            .iter()
            .filter(|s| s.profile.shuffle_input_ratio < 0.4)
            .count();
        let mid = specs
            .iter()
            .filter(|s| (0.4..=1.0).contains(&s.profile.shuffle_input_ratio))
            .count();
        let high = specs
            .iter()
            .filter(|s| s.profile.shuffle_input_ratio > 1.0)
            .count();
        assert!(low > 1000 && mid > 500 && high > 200, "{low}/{mid}/{high}");
    }

    #[test]
    fn chunked_stream_equals_materialized_trace() {
        let cfg = FacebookTraceConfig {
            jobs: 700,
            ..Default::default()
        };
        let whole = generate(&cfg);
        // Chunk sizes that do and do not divide the job count, including a
        // degenerate 1-job window.
        for chunk in [1usize, 64, 700, 1000] {
            let mut s = stream(&cfg);
            let mut rebuilt = Vec::new();
            loop {
                let got = s.next_chunk(chunk);
                if got.is_empty() {
                    break;
                }
                assert!(got.len() <= chunk);
                rebuilt.extend(got);
            }
            assert_eq!(rebuilt, whole, "chunk size {chunk}");
            assert_eq!(s.remaining(), 0);
        }
    }

    #[test]
    fn stream_reports_exact_length() {
        let cfg = FacebookTraceConfig {
            jobs: 123,
            ..Default::default()
        };
        let mut s = stream(&cfg);
        assert_eq!(s.len(), 123);
        s.next();
        assert_eq!(s.len(), 122);
        assert_eq!(s.next_chunk(50).len(), 50);
        assert_eq!(s.remaining(), 72);
    }

    #[test]
    fn json_roundtrip_preserves_the_trace() {
        let cfg = FacebookTraceConfig {
            jobs: 50,
            ..Default::default()
        };
        let specs = generate(&cfg);
        let json = to_json(&specs);
        let back = from_json(&json).unwrap();
        assert_eq!(specs, back);
    }

    #[test]
    fn stationary_weights_reproduce_the_unshifted_trace() {
        let base = FacebookTraceConfig::default();
        let shifted = FacebookTraceConfig {
            band_shift: Some(BandMixShift {
                at: SimDuration::from_secs(0),
                weights: [0.50, 0.35, 0.15],
            }),
            ..base.clone()
        };
        assert_eq!(generate(&base), generate(&shifted));
    }

    #[test]
    fn band_shift_changes_only_post_shift_ratios() {
        let base = FacebookTraceConfig::default();
        let at = SimDuration::from_secs(4 * 3600);
        let shifted = DriftScenario::shuffle_mix_shift(at).trace_config(&base);
        let a = generate(&base);
        let b = generate(&shifted);
        assert_eq!(a.len(), b.len());
        let mut diverged = 0usize;
        for (x, y) in a.iter().zip(&b) {
            // Sizes and arrivals come from separate substreams: untouched.
            assert_eq!(x.id, y.id);
            assert_eq!(x.input_size, y.input_size);
            assert_eq!(x.submit, y.submit);
            if x.submit.as_secs_f64() < at.as_secs_f64() {
                assert_eq!(x, y, "pre-shift prefix must be bitwise identical");
            } else if x.profile.shuffle_input_ratio != y.profile.shuffle_input_ratio {
                diverged += 1;
            }
        }
        assert!(diverged > 100, "only {diverged} post-shift ratios changed");
        // The post-shift mix is majority shuffle-heavy as configured.
        let post: Vec<_> = b
            .iter()
            .filter(|s| s.submit.as_secs_f64() >= at.as_secs_f64())
            .collect();
        let high = post
            .iter()
            .filter(|s| s.profile.shuffle_input_ratio > 1.0)
            .count() as f64
            / post.len() as f64;
        assert!((high - 0.50).abs() < 0.05, "high-band fraction {high}");
    }

    #[test]
    fn drift_scenarios_build_deterministic_fault_plans() {
        let at = SimDuration::from_secs(3600);
        let stationary = DriftScenario::stationary();
        assert!(stationary.fault_plan().is_empty());
        assert!(stationary.band_shift.is_none());

        let slowdown = DriftScenario::scale_up_slowdown(at);
        let plan = slowdown.fault_plan();
        assert_eq!(plan, slowdown.fault_plan());
        assert_eq!(plan.node_events.len(), 1);
        let ev = plan.node_events[0];
        assert_eq!(ev.cluster, 0);
        assert_eq!(ev.node, 0);
        assert_eq!(ev.at, SimTime(at.0));
        assert_eq!(ev.kind, NodeFaultKind::Crash);
        assert!(
            plan.straggler_prob <= 0.0,
            "no straggler RNG may be consumed"
        );

        let mix = DriftScenario::shuffle_mix_shift(at);
        assert!(mix.fault_plan().is_empty());
        assert_eq!(mix.band_shift.as_ref().unwrap().at, at);
    }

    #[test]
    fn sizes_have_a_floor_of_one_byte() {
        let cfg = FacebookTraceConfig {
            shrink_factor: 1e9,
            jobs: 100,
            ..Default::default()
        };
        let specs = generate(&cfg);
        assert!(specs.iter().all(|s| s.input_size >= 1));
    }
}
