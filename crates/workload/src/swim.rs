//! SWIM trace import.
//!
//! The FB-2009 workload the paper replays is published by the SWIM project
//! (Chen et al., "Interactive Analytical Processing in Big Data Systems" —
//! the paper's reference \[9\]) as tab-separated text, one job per line:
//!
//! ```text
//! job_id \t submit_secs \t inter_arrival_secs \t input_bytes \t shuffle_bytes \t output_bytes
//! ```
//!
//! This module parses that format into [`JobSpec`]s so a real published
//! trace can be replayed instead of (or beside) our Figure 3 re-synthesis.
//! The shuffle/input and output/input ratios come straight from the trace
//! columns — exactly the quantities the paper's Algorithm 1 consumes.

use crate::apps;
use mapreduce::{JobId, JobSpec};
use simcore::SimTime;
use std::fmt;

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwimParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SwimParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SWIM trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwimParseError {}

/// One parsed SWIM record.
#[derive(Debug, Clone, PartialEq)]
pub struct SwimJob {
    /// Job identifier from the trace.
    pub id: String,
    /// Submission time, seconds from trace start.
    pub submit_secs: f64,
    /// Input bytes.
    pub input_bytes: u64,
    /// Shuffle bytes.
    pub shuffle_bytes: u64,
    /// Output bytes.
    pub output_bytes: u64,
}

impl SwimJob {
    /// The placement-deciding ratio; zero-input jobs count as map-intensive.
    pub fn shuffle_input_ratio(&self) -> f64 {
        if self.input_bytes == 0 {
            0.0
        } else {
            self.shuffle_bytes as f64 / self.input_bytes as f64
        }
    }
}

/// Parse SWIM text. Empty lines and `#` comments are skipped.
///
/// # Errors
/// Returns the first malformed line.
pub fn parse(text: &str) -> Result<Vec<SwimJob>, SwimParseError> {
    let mut jobs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 6 {
            return Err(SwimParseError {
                line: i + 1,
                message: format!("expected 6 tab-separated fields, got {}", fields.len()),
            });
        }
        let parse_f = |s: &str, what: &str| {
            s.trim().parse::<f64>().map_err(|e| SwimParseError {
                line: i + 1,
                message: format!("bad {what} {s:?}: {e}"),
            })
        };
        let parse_u = |s: &str, what: &str| {
            s.trim().parse::<u64>().map_err(|e| SwimParseError {
                line: i + 1,
                message: format!("bad {what} {s:?}: {e}"),
            })
        };
        let submit = parse_f(fields[1], "submit time")?;
        if !submit.is_finite() || submit < 0.0 {
            return Err(SwimParseError {
                line: i + 1,
                message: format!("submit time must be non-negative, got {submit}"),
            });
        }
        jobs.push(SwimJob {
            id: fields[0].trim().to_string(),
            submit_secs: submit,
            input_bytes: parse_u(fields[3], "input bytes")?,
            shuffle_bytes: parse_u(fields[4], "shuffle bytes")?,
            output_bytes: parse_u(fields[5], "output bytes")?,
        });
    }
    jobs.sort_by(|a, b| a.submit_secs.total_cmp(&b.submit_secs));
    Ok(jobs)
}

/// Convert parsed SWIM jobs into simulator [`JobSpec`]s, applying the
/// paper's size shrink factor to input/shuffle/output alike (§V: "we shrank
/// the input/shuffle/output data size of the workload by a factor of 5").
pub fn to_job_specs(jobs: &[SwimJob], shrink_factor: f64) -> Vec<JobSpec> {
    assert!(shrink_factor >= 1.0, "shrink factor must be ≥ 1");
    jobs.iter()
        .enumerate()
        .map(|(i, j)| {
            let input = ((j.input_bytes as f64 / shrink_factor) as u64).max(1);
            let ratio = j.shuffle_input_ratio().clamp(0.0, 4.0);
            let mut profile = apps::synthetic(ratio);
            profile.name = format!("swim-{}", j.id);
            // Preserve the trace's own output ratio rather than the
            // synthetic default.
            profile.output_input_ratio = if j.input_bytes == 0 {
                0.0
            } else {
                (j.output_bytes as f64 / j.input_bytes as f64).min(4.0)
            };
            JobSpec {
                id: JobId(i as u32),
                profile,
                input_size: input,
                submit: SimTime::from_secs_f64(j.submit_secs),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# FB-2009 style sample
job1\t0.0\t0.0\t1048576\t419430\t104857
job2\t14.2\t14.2\t32212254720\t51539607552\t1073741824
job3\t5.0\t0.0\t0\t0\t0
";

    #[test]
    fn parses_and_sorts_by_submit_time() {
        let jobs = parse(SAMPLE).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].id, "job1");
        assert_eq!(jobs[1].id, "job3", "sorted by submit time");
        assert_eq!(jobs[2].id, "job2");
        assert_eq!(jobs[2].input_bytes, 32212254720);
    }

    #[test]
    fn ratios_come_from_the_columns() {
        let jobs = parse(SAMPLE).unwrap();
        let j2 = jobs.iter().find(|j| j.id == "job2").unwrap();
        assert!((j2.shuffle_input_ratio() - 1.6).abs() < 0.01);
        let j3 = jobs.iter().find(|j| j.id == "job3").unwrap();
        assert_eq!(j3.shuffle_input_ratio(), 0.0, "zero input → map-intensive");
    }

    #[test]
    fn conversion_applies_shrink_and_preserves_ratios() {
        let jobs = parse(SAMPLE).unwrap();
        let specs = to_job_specs(&jobs, 5.0);
        assert_eq!(specs.len(), 3);
        let big = specs
            .iter()
            .find(|s| s.profile.name == "swim-job2")
            .unwrap();
        assert_eq!(big.input_size, 32212254720 / 5);
        assert!((big.profile.shuffle_input_ratio - 1.6).abs() < 0.01);
        assert!((big.profile.output_input_ratio - 1.0 / 30.0).abs() < 0.01);
        assert!(specs.windows(2).all(|w| w[0].submit <= w[1].submit));
    }

    #[test]
    fn rejects_short_lines_with_location() {
        let err = parse("job1\t1.0\t0.0\t100\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("6 tab-separated"));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn rejects_garbage_numbers() {
        let err = parse("job1\tnope\t0\t1\t2\t3\n").unwrap_err();
        assert!(err.message.contains("submit time"));
        let err = parse("job1\t1.0\t0\t-5\t2\t3\n").unwrap_err();
        assert!(err.message.contains("input bytes"));
        let err = parse("job1\t-2.0\t0\t1\t2\t3\n").unwrap_err();
        assert!(err.message.contains("non-negative"));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let jobs = parse("# header\n\n  \njob1\t0\t0\t1\t1\t1\n").unwrap();
        assert_eq!(jobs.len(), 1);
    }

    #[test]
    fn zero_input_job_converts_safely() {
        let jobs = parse(SAMPLE).unwrap();
        let specs = to_job_specs(&jobs, 5.0);
        let zero = specs
            .iter()
            .find(|s| s.profile.name == "swim-job3")
            .unwrap();
        assert_eq!(zero.input_size, 1, "floored to one byte");
        assert_eq!(zero.profile.output_input_ratio, 0.0);
    }

    #[test]
    fn imported_trace_runs_end_to_end() {
        // The full path: SWIM text → specs → simulation.
        let specs = to_job_specs(&parse(SAMPLE).unwrap(), 5.0);
        let mut net = simcore::FlowNetwork::new();
        let built =
            cluster::ClusterSpec::homogeneous("out", cluster::presets::scale_out_machine(), 4)
                .build(&mut net, 0);
        let dfs = storage::OfsModel::new(storage::OfsConfig::default(), &mut net);
        let mut sim = mapreduce::Simulation::new(
            net,
            Box::new(dfs),
            vec![(built, mapreduce::EngineConfig::scale_out())],
        );
        for spec in specs {
            sim.submit(spec, 0);
        }
        let results = sim.run();
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.succeeded()));
    }
}
