//! Trace statistics — the quantities a capacity planner reads off a
//! workload before choosing a hybrid mix.

use crate::facebook;
use mapreduce::JobSpec;
use scheduler::{ClusterLoads, CrossPointScheduler, JobPlacement, Placement};

/// Summary of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Total input bytes across all jobs.
    pub total_input: u64,
    /// Total shuffle bytes (input × per-job ratio).
    pub total_shuffle: u64,
    /// Jobs the default cross-point scheduler routes to scale-up.
    pub scale_up_jobs: usize,
    /// Input bytes carried by the scale-up class.
    pub scale_up_input: u64,
    /// Jobs per Figure 3 band: `< 1 MB`, `1 MB..=30 GB`, `> 30 GB`
    /// (pre-shrink band edges applied to the trace's actual sizes).
    pub band_counts: [usize; 3],
    /// Arrival span in seconds (first to last submission).
    pub span_secs: f64,
    /// Burstiness index: the peak 60-second arrival count divided by the
    /// mean 60-second arrival count. 1.0 ≈ uniform; FB-like traces run
    /// well above 2.
    pub burstiness: f64,
}

/// Compute [`TraceStats`] for a trace (jobs need not be sorted).
pub fn analyze(trace: &[JobSpec]) -> TraceStats {
    assert!(!trace.is_empty(), "empty trace");
    let classifier = CrossPointScheduler::default();
    let loads = ClusterLoads::default();
    let mut stats = TraceStats {
        jobs: trace.len(),
        total_input: 0,
        total_shuffle: 0,
        scale_up_jobs: 0,
        scale_up_input: 0,
        band_counts: [0; 3],
        span_secs: 0.0,
        burstiness: 1.0,
    };
    let mut t_min = f64::INFINITY;
    let mut t_max = f64::NEG_INFINITY;
    for j in trace {
        stats.total_input += j.input_size;
        stats.total_shuffle += j.profile.shuffle_bytes(j.input_size);
        if classifier.place(j, &loads) == Placement::ScaleUp {
            stats.scale_up_jobs += 1;
            stats.scale_up_input += j.input_size;
        }
        let band = if j.input_size < 1_000_000 {
            0
        } else if j.input_size <= 30_000_000_000 {
            1
        } else {
            2
        };
        stats.band_counts[band] += 1;
        let t = j.submit.as_secs_f64();
        t_min = t_min.min(t);
        t_max = t_max.max(t);
    }
    stats.span_secs = (t_max - t_min).max(0.0);

    // Burstiness over fixed 60 s bins.
    let bins = ((stats.span_secs / 60.0).ceil() as usize).max(1);
    let mut counts = vec![0u32; bins];
    for j in trace {
        let bin = (((j.submit.as_secs_f64() - t_min) / 60.0) as usize).min(bins - 1);
        counts[bin] += 1;
    }
    let mean = trace.len() as f64 / bins as f64;
    let peak = counts.iter().copied().max().unwrap_or(0) as f64;
    stats.burstiness = if mean > 0.0 { peak / mean } else { 1.0 };
    stats
}

/// Analyze a generated FB-2009 config directly.
pub fn analyze_config(cfg: &facebook::FacebookTraceConfig) -> TraceStats {
    analyze(&facebook::generate(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facebook::{generate, BurstModel, FacebookTraceConfig};

    #[test]
    fn totals_and_bands_are_consistent() {
        let cfg = FacebookTraceConfig {
            jobs: 500,
            ..Default::default()
        };
        let stats = analyze(&generate(&cfg));
        assert_eq!(stats.jobs, 500);
        assert_eq!(stats.band_counts.iter().sum::<usize>(), 500);
        assert!(stats.total_shuffle > 0);
        assert!(
            stats.scale_up_jobs > stats.jobs / 2,
            "FB traces are small-job heavy"
        );
        assert!(stats.scale_up_input <= stats.total_input);
        assert!(stats.span_secs > 0.0);
    }

    #[test]
    fn bursty_traces_measure_burstier_than_uniform() {
        let uniform = FacebookTraceConfig {
            jobs: 3000,
            bursts: None,
            ..Default::default()
        };
        let bursty = FacebookTraceConfig {
            jobs: 3000,
            bursts: Some(BurstModel::default()),
            ..Default::default()
        };
        let u = analyze(&generate(&uniform));
        let b = analyze(&generate(&bursty));
        assert!(
            b.burstiness > 1.5 * u.burstiness,
            "bursty {:.2} vs uniform {:.2}",
            b.burstiness,
            u.burstiness
        );
    }

    #[test]
    fn scale_up_class_carries_minority_of_bytes() {
        // Most *jobs* are scale-up class, but most *bytes* belong to the
        // large scale-out jobs — the asymmetry the hybrid design exploits.
        let stats = analyze_config(&FacebookTraceConfig {
            jobs: 2000,
            ..Default::default()
        });
        let up_frac_jobs = stats.scale_up_jobs as f64 / stats.jobs as f64;
        let up_frac_bytes = stats.scale_up_input as f64 / stats.total_input as f64;
        assert!(up_frac_jobs > 0.8);
        assert!(
            up_frac_bytes < 0.5,
            "up class holds {:.0}% of bytes",
            up_frac_bytes * 100.0
        );
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn rejects_empty_traces() {
        analyze(&[]);
    }
}
