//! # workload — applications and trace synthesis
//!
//! The paper's benchmark applications ([`apps`]: Wordcount, Grep, TestDFSIO,
//! plus Sort and a ratio-parameterized synthetic family) and the FB-2009
//! Facebook workload re-synthesis ([`facebook`]) used by the §V trace-driven
//! evaluation, matching the published Figure 3 input-size distribution.
//! [`tenants`] layers a multi-tenant arrival model on the same streaming
//! machinery: thousands of Zipf-active tenants in three hierarchical
//! queues, diurnal × MMPP arrival modulation, per-class size/shuffle
//! mixes and SLOs — the heavy-traffic shape the scheduler zoo is judged
//! against.

pub mod apps;
pub mod facebook;
pub mod stats;
pub mod swim;
pub mod tenants;

pub use facebook::{
    generate as generate_facebook_trace, stream as stream_facebook_trace, BandMixShift, BurstModel,
    DriftScenario, FacebookTraceConfig, NodeLoss, TraceStream,
};
pub use stats::{analyze as analyze_trace, TraceStats};
pub use swim::{parse as parse_swim_trace, to_job_specs as swim_to_job_specs, SwimJob};
pub use tenants::{
    generate as generate_tenant_trace, stream as stream_tenant_trace, tenant_table, DiurnalModel,
    TenantModelConfig, TenantStream,
};
