//! # workload — applications and trace synthesis
//!
//! The paper's benchmark applications ([`apps`]: Wordcount, Grep, TestDFSIO,
//! plus Sort and a ratio-parameterized synthetic family) and the FB-2009
//! Facebook workload re-synthesis ([`facebook`]) used by the §V trace-driven
//! evaluation, matching the published Figure 3 input-size distribution.

pub mod apps;
pub mod facebook;
pub mod stats;
pub mod swim;

pub use facebook::{
    generate as generate_facebook_trace, stream as stream_facebook_trace, BandMixShift, BurstModel,
    DriftScenario, FacebookTraceConfig, NodeLoss, TraceStream,
};
pub use stats::{analyze as analyze_trace, TraceStats};
pub use swim::{parse as parse_swim_trace, to_job_specs as swim_to_job_specs, SwimJob};
