//! The paper's benchmark applications as cost profiles.
//!
//! §III-A: "The applications we use include Wordcount, Grep, and the write
//! test of TestDFSIO. Among them, Wordcount and Grep are typical
//! shuffle-intensive applications ... The write test of TestDFSIO is typical
//! map-intensive". The shuffle/input ratios are the paper's measured
//! constants: "regardless of the input data size of the jobs, the
//! shuffle/input ratio of Wordcount and Grep are always around 1.6 and 0.4,
//! respectively"; for TestDFSIO "the shuffle size (in KB) is negligible".

use mapreduce::JobProfile;

/// Wordcount over Wikipedia-derived text (BigDataBench input): heavy
/// tokenisation CPU, shuffle/input ≈ 1.6, small output.
pub fn wordcount() -> JobProfile {
    JobProfile {
        name: "wordcount".into(),
        map_cycles_per_byte: 45.0,
        reduce_cycles_per_byte: 8.0,
        shuffle_input_ratio: 1.6,
        output_input_ratio: 0.05,
        maps_read_input: true,
        maps_write_output: false,
        fixed_reduces: None,
    }
}

/// Grep over the same text: lighter map CPU, shuffle/input ≈ 0.4, small
/// output ("Wordcount and Grep have only relatively large input and shuffle
/// size but small output size").
pub fn grep() -> JobProfile {
    JobProfile {
        name: "grep".into(),
        map_cycles_per_byte: 22.0,
        reduce_cycles_per_byte: 5.0,
        shuffle_input_ratio: 0.4,
        output_input_ratio: 0.02,
        maps_read_input: true,
        maps_write_output: false,
        fixed_reduces: None,
    }
}

/// The TestDFSIO write test: "each map task is responsible for writing a
/// file ... There is only one reduce task, which collects and aggregates the
/// statistics". Mappers generate and write data (no DFS input), shuffle is
/// negligible.
pub fn testdfsio_write() -> JobProfile {
    JobProfile {
        name: "testdfsio-write".into(),
        map_cycles_per_byte: 3.0,
        reduce_cycles_per_byte: 0.0,
        shuffle_input_ratio: 1.0e-6,
        output_input_ratio: 1.0,
        maps_read_input: false,
        maps_write_output: true,
        fixed_reduces: Some(1),
    }
}

/// The TestDFSIO read test (companion of the write test): mappers stream
/// their file back from the DFS; one statistics reducer.
pub fn testdfsio_read() -> JobProfile {
    JobProfile {
        name: "testdfsio-read".into(),
        map_cycles_per_byte: 3.0,
        reduce_cycles_per_byte: 0.0,
        shuffle_input_ratio: 1.0e-6,
        output_input_ratio: 0.0,
        maps_read_input: true,
        maps_write_output: false,
        fixed_reduces: Some(1),
    }
}

/// Sort: shuffle/input = output/input = 1.0 — a useful midpoint between
/// Grep (0.4) and Wordcount (1.6) for cross-point interpolation studies.
pub fn sort() -> JobProfile {
    JobProfile {
        name: "sort".into(),
        map_cycles_per_byte: 10.0,
        reduce_cycles_per_byte: 10.0,
        shuffle_input_ratio: 1.0,
        output_input_ratio: 1.0,
        maps_read_input: true,
        maps_write_output: false,
        fixed_reduces: None,
    }
}

/// TeraSort: the canonical sort benchmark — shuffle and output both equal
/// the input, modest CPU (byte comparison and partitioning).
pub fn terasort() -> JobProfile {
    JobProfile {
        name: "terasort".into(),
        map_cycles_per_byte: 8.0,
        reduce_cycles_per_byte: 12.0,
        shuffle_input_ratio: 1.0,
        output_input_ratio: 1.0,
        maps_read_input: true,
        maps_write_output: false,
        fixed_reduces: None,
    }
}

/// One k-means iteration: CPU-heavy maps (distance computations), tiny
/// shuffle (per-centroid partial sums) and tiny output — firmly
/// map-intensive under the paper's classification.
pub fn kmeans_iteration() -> JobProfile {
    JobProfile {
        name: "kmeans-iter".into(),
        map_cycles_per_byte: 90.0,
        reduce_cycles_per_byte: 2.0,
        shuffle_input_ratio: 0.001,
        output_input_ratio: 0.0005,
        maps_read_input: true,
        maps_write_output: false,
        fixed_reduces: None,
    }
}

/// One PageRank iteration: the rank vector is re-emitted along every edge,
/// so shuffle roughly matches the (adjacency-list) input; output is the
/// new rank vector.
pub fn pagerank_iteration() -> JobProfile {
    JobProfile {
        name: "pagerank-iter".into(),
        map_cycles_per_byte: 15.0,
        reduce_cycles_per_byte: 10.0,
        shuffle_input_ratio: 0.9,
        output_input_ratio: 0.15,
        maps_read_input: true,
        maps_write_output: false,
        fixed_reduces: None,
    }
}

/// A synthetic profile with a chosen shuffle/input ratio, interpolating the
/// CPU costs between the Grep-like and Wordcount-like endpoints. Used by
/// trace synthesis and cross-point sweeps over the ratio axis.
pub fn synthetic(shuffle_input_ratio: f64) -> JobProfile {
    assert!(
        (0.0..=4.0).contains(&shuffle_input_ratio),
        "ratio out of the modelled range"
    );
    // More shuffle per input byte implies more map-side processing per byte
    // (the map function produces the shuffle records).
    let t = (shuffle_input_ratio / 1.6).min(1.5);
    JobProfile {
        name: format!("synthetic-r{shuffle_input_ratio:.2}"),
        map_cycles_per_byte: 12.0 + 28.0 * t,
        reduce_cycles_per_byte: 3.0 + 5.0 * t,
        shuffle_input_ratio,
        output_input_ratio: 0.1 * shuffle_input_ratio.max(0.2),
        maps_read_input: true,
        maps_write_output: false,
        fixed_reduces: None,
    }
}

/// All named presets (for harness enumeration).
pub fn all() -> Vec<JobProfile> {
    vec![
        wordcount(),
        grep(),
        testdfsio_write(),
        testdfsio_read(),
        sort(),
        terasort(),
        kmeans_iteration(),
        pagerank_iteration(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_paper() {
        assert_eq!(wordcount().shuffle_input_ratio, 1.6);
        assert_eq!(grep().shuffle_input_ratio, 0.4);
        assert!(testdfsio_write().shuffle_input_ratio < 1e-3);
    }

    #[test]
    fn classification_matches_paper() {
        assert!(!wordcount().is_map_intensive());
        assert!(!grep().is_map_intensive()); // 0.4 sits on the boundary, inclusive upward
        assert!(testdfsio_write().is_map_intensive());
    }

    #[test]
    fn dfsio_shape_is_write_only() {
        let p = testdfsio_write();
        assert!(!p.maps_read_input);
        assert!(p.maps_write_output);
        assert_eq!(p.fixed_reduces, Some(1));
        assert_eq!(p.output_input_ratio, 1.0);
    }

    #[test]
    fn extended_profiles_span_all_scheduler_bands() {
        // The extension apps land in each of Algorithm 1's three bands.
        assert!(kmeans_iteration().is_map_intensive());
        assert!(!pagerank_iteration().is_map_intensive());
        assert!(pagerank_iteration().shuffle_input_ratio <= 1.0);
        assert!(terasort().shuffle_input_ratio <= 1.0);
        assert!(wordcount().shuffle_input_ratio > 1.0);
    }

    #[test]
    fn synthetic_covers_the_ratio_axis() {
        for r in [0.0, 0.2, 0.4, 1.0, 1.6, 2.5] {
            let p = synthetic(r);
            assert_eq!(p.shuffle_input_ratio, r);
            assert!(p.map_cycles_per_byte > 0.0);
        }
    }

    #[test]
    fn synthetic_cpu_grows_with_ratio() {
        assert!(synthetic(1.6).map_cycles_per_byte > synthetic(0.2).map_cycles_per_byte);
    }

    #[test]
    fn all_presets_have_distinct_names() {
        let names: Vec<_> = all().into_iter().map(|p| p.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
